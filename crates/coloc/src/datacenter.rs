//! Datacenter-scale comparison: segregated vs RubikColoc (Fig. 14 / Fig. 16).
//!
//! The paper's baseline datacenter segregates work: 1000 servers run the five
//! latency-critical (LC) applications (200 servers each, 6 application copies
//! per server) and 1000 servers run 20 batch mixes (50 servers each). The
//! colocated datacenter managed by RubikColoc keeps the 1000 LC servers but
//! lets them absorb batch work in their idle core cycles, then provisions
//! just enough extra batch-only servers to match the segregated datacenter's
//! batch throughput (a fixed-work comparison). The figure of merit is total
//! datacenter power and server count, normalized to the segregated datacenter
//! at 60% LC load, swept over LC loads of 10–60%.

use serde::{Deserialize, Serialize};

use rubik_power::ServerPowerModel;
use rubik_sweep::{SweepExecutor, SweepSpec};
use rubik_workloads::{AppProfile, BatchMix};

use crate::runner::ColocatedCore;
use crate::schemes::{batch_tpw_freq, ColocScheme};

/// Configuration of the datacenter experiment.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DatacenterConfig {
    /// Number of LC (and colocated) servers.
    pub lc_servers: usize,
    /// Number of batch servers in the segregated baseline.
    pub batch_servers: usize,
    /// Cores per server.
    pub cores_per_server: usize,
    /// Requests simulated per (application, load) sample point.
    pub requests_per_sample: usize,
    /// RNG seed.
    pub seed: u64,
}

impl DatacenterConfig {
    /// The paper's setup (Fig. 14), with a reduced per-point request count so
    /// the sweep completes quickly.
    pub fn paper() -> Self {
        Self {
            lc_servers: 1000,
            batch_servers: 1000,
            cores_per_server: 6,
            requests_per_sample: 2000,
            seed: 42,
        }
    }

    /// A small configuration for tests.
    pub fn small() -> Self {
        Self {
            lc_servers: 10,
            batch_servers: 10,
            cores_per_server: 6,
            requests_per_sample: 600,
            seed: 7,
        }
    }
}

/// One point of the Fig. 16 sweep.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DatacenterPoint {
    /// LC load for this point (fraction of capacity).
    pub lc_load: f64,
    /// Total power of the segregated datacenter (W).
    pub segregated_power: f64,
    /// Total power of the RubikColoc datacenter (W).
    pub coloc_power: f64,
    /// Servers used by the segregated datacenter.
    pub segregated_servers: usize,
    /// Servers used by the RubikColoc datacenter.
    pub coloc_servers: usize,
    /// Worst normalized LC tail latency across applications under RubikColoc.
    pub worst_normalized_tail: f64,
}

/// Shared immutable context for a datacenter sweep, built once per sweep
/// instead of once per load point.
///
/// Everything here is independent of the LC load being evaluated: the
/// application profiles, the batch mixes, the per-app latency bounds
/// (tail of the fixed-frequency scheme at 50% load — a full calibration
/// simulation each), and the batch-only server's power/throughput. The
/// sweep engine's cell closures capture this context by shared reference.
#[derive(Debug, Clone)]
pub struct DatacenterContext {
    /// The five LC application profiles.
    pub apps: Vec<AppProfile>,
    /// The batch mixes (paper: 20 mixes of SPEC-like apps).
    pub mixes: Vec<BatchMix>,
    /// Per-app latency bounds, index-aligned with `apps`.
    pub bounds: Vec<f64>,
    /// Idle power of one core at the minimum DVFS level (W).
    pub idle_core_power: f64,
    /// Server power outside the cores (W).
    pub platform_power: f64,
    /// Power of one batch-only server, all cores at TPW-optimal levels (W).
    pub batch_server_power: f64,
    /// Throughput of one batch-only server (work units / s).
    pub batch_server_tput: f64,
}

/// Runs the segregated-vs-colocated comparison.
#[derive(Debug, Clone)]
pub struct DatacenterComparison {
    config: DatacenterConfig,
    core: ColocatedCore,
    server_power: ServerPowerModel,
}

impl DatacenterComparison {
    /// Creates a comparison with the given configuration.
    pub fn new(config: DatacenterConfig) -> Self {
        Self {
            config,
            core: ColocatedCore::new(),
            server_power: ServerPowerModel::paper_simulated(),
        }
    }

    /// The configuration this comparison runs with.
    pub fn config(&self) -> &DatacenterConfig {
        &self.config
    }

    /// Builds the load-independent sweep context (serial).
    pub fn context(&self) -> DatacenterContext {
        self.context_with_threads(1)
    }

    /// Builds the load-independent sweep context, fanning the per-app
    /// latency-bound calibrations across `threads` workers (`0` = auto).
    pub fn context_with_threads(&self, threads: usize) -> DatacenterContext {
        let apps = AppProfile::all();
        let mixes = BatchMix::paper_mixes(self.config.seed);
        let dvfs = self.core.sim_config().dvfs.clone();
        let power = self.core.power_model();
        let idle_core_power = power.idle_power(dvfs.min());

        // --- Batch-only server: all cores busy at TPW-optimal frequencies.
        let batch_core_power_and_tput: Vec<(f64, f64)> = mixes
            .iter()
            .map(|mix| {
                let per_app: Vec<(f64, f64)> = mix
                    .apps
                    .iter()
                    .map(|a| {
                        let f = batch_tpw_freq(a, 1.0, &dvfs, power);
                        (power.active_power(f), a.throughput(f, dvfs.nominal(), 1.0))
                    })
                    .collect();
                let p = per_app.iter().map(|x| x.0).sum::<f64>() / per_app.len() as f64;
                let t = per_app.iter().map(|x| x.1).sum::<f64>() / per_app.len() as f64;
                (p, t)
            })
            .collect();
        let mean_batch_core_power: f64 =
            batch_core_power_and_tput.iter().map(|x| x.0).sum::<f64>() / mixes.len() as f64;
        let mean_batch_core_tput: f64 =
            batch_core_power_and_tput.iter().map(|x| x.1).sum::<f64>() / mixes.len() as f64;
        let cores = self.config.cores_per_server as f64;
        let platform_power = self.server_power.idle_power() - cores * idle_core_power;
        let batch_server_power = platform_power + cores * mean_batch_core_power;
        let batch_server_tput = cores * mean_batch_core_tput;

        // Per-app latency bounds: each is an independent calibration
        // simulation, so fan them across the pool in app order.
        let bounds = SweepExecutor::new(threads).map_indexed(&apps, |i, app| {
            self.core.latency_bound(
                app,
                self.config.requests_per_sample,
                self.config.seed + i as u64,
            )
        });

        DatacenterContext {
            apps,
            mixes,
            bounds,
            idle_core_power,
            platform_power,
            batch_server_power,
            batch_server_tput,
        }
    }

    /// Evaluates one LC load point, rebuilding the context (kept for
    /// API compatibility; sweeps should build the context once and use
    /// [`DatacenterComparison::evaluate_with`]).
    pub fn evaluate(&self, lc_load: f64) -> DatacenterPoint {
        self.evaluate_with(&self.context(), lc_load)
    }

    /// Evaluates one LC load point against a precomputed context.
    pub fn evaluate_with(&self, ctx: &DatacenterContext, lc_load: f64) -> DatacenterPoint {
        assert!(lc_load > 0.0 && lc_load < 1.0, "LC load must be in (0, 1)");
        let apps = &ctx.apps;
        let mixes = &ctx.mixes;
        let dvfs = &self.core.sim_config().dvfs;
        let idle_core_power = ctx.idle_core_power;
        let cores = self.config.cores_per_server as f64;
        let platform_power = ctx.platform_power;
        let batch_server_power = ctx.batch_server_power;
        let batch_server_tput = ctx.batch_server_tput;

        // --- Segregated LC server: 6 copies of one app at the StaticOracle
        // frequency for this load, no batch work.
        // --- Colocated server: RubikColoc outcome per app, averaged over a
        // subset of mixes for tractability.
        let mut seg_lc_power_total = 0.0;
        let mut coloc_power_total = 0.0;
        let mut coloc_batch_tput_total = 0.0;
        let mut worst_tail: f64 = 0.0;

        for (i, app) in apps.iter().enumerate() {
            let bound = ctx.bounds[i];

            // Segregated: StaticColoc without interference is equivalent to a
            // non-colocated StaticOracle server, so reuse the runner with the
            // no-interference model.
            let seg = ColocatedCore::new()
                .with_interference(crate::interference::CoreInterferenceModel::none())
                .run(
                    &crate::ColocRunSpec::new(
                        ColocScheme::StaticColoc,
                        app,
                        &mixes[i % mixes.len()],
                        bound,
                    )
                    .with_load(lc_load)
                    .with_requests(self.config.requests_per_sample)
                    .with_seed(self.config.seed + 100 + i as u64),
                );
            // Segregated servers do not run batch work on LC cores: only the
            // LC energy counts, idle time is charged at idle power.
            let seg_core_power = (seg.lc_energy
                + idle_core_power * (1.0 - seg.lc_utilization) * seg.duration)
                / seg.duration;
            seg_lc_power_total += platform_power + cores * seg_core_power;

            // Colocated: RubikColoc with interference and batch filling idle
            // time.
            let mix = &mixes[i % mixes.len()];
            let coloc = self.core.run(
                &crate::ColocRunSpec::new(ColocScheme::RubikColoc, app, mix, bound)
                    .with_load(lc_load)
                    .with_requests(self.config.requests_per_sample)
                    .with_seed(self.config.seed + 200 + i as u64),
            );
            worst_tail = worst_tail.max(coloc.normalized_tail);
            coloc_power_total += platform_power + cores * coloc.average_power();
            let batch_share = 0.5;
            coloc_batch_tput_total += cores
                * (coloc.batch_work / coloc.duration).max(0.0).min(
                    self.core
                        .mean_batch_throughput(mix, dvfs.nominal(), batch_share),
                );
        }

        let n_apps = apps.len() as f64;
        let seg_lc_server_power = seg_lc_power_total / n_apps;
        let coloc_server_power = coloc_power_total / n_apps;
        let coloc_batch_tput_per_server = coloc_batch_tput_total / n_apps;

        // --- Fixed-work batch accounting.
        let total_batch_tput_needed = self.config.batch_servers as f64 * batch_server_tput;
        let absorbed = self.config.lc_servers as f64 * coloc_batch_tput_per_server;
        let remaining = (total_batch_tput_needed - absorbed).max(0.0);
        let extra_batch_servers = (remaining / batch_server_tput).ceil() as usize;

        let segregated_power = self.config.lc_servers as f64 * seg_lc_server_power
            + self.config.batch_servers as f64 * batch_server_power;
        let coloc_power = self.config.lc_servers as f64 * coloc_server_power
            + extra_batch_servers as f64 * batch_server_power;

        DatacenterPoint {
            lc_load,
            segregated_power,
            coloc_power,
            segregated_servers: self.config.lc_servers + self.config.batch_servers,
            coloc_servers: self.config.lc_servers + extra_batch_servers,
            worst_normalized_tail: worst_tail,
        }
    }

    /// Evaluates a sweep of LC loads (Fig. 16 uses 10–60%), using every
    /// available core. Bit-identical to the serial path — see
    /// [`DatacenterComparison::sweep_with_threads`].
    pub fn sweep(&self, loads: &[f64]) -> Vec<DatacenterPoint> {
        self.sweep_with_threads(loads, 0)
    }

    /// Evaluates a sweep of LC loads on a `rubik-sweep` worker pool
    /// (`threads == 0` = auto, `1` = serial reference path).
    ///
    /// The context (profiles, mixes, latency bounds, batch-server power) is
    /// built once and shared immutably by every cell; each load point is one
    /// cell. Results are returned in load order and are bit-for-bit
    /// identical for any thread count (property-tested in
    /// `tests/parallel_determinism.rs`).
    pub fn sweep_with_threads(&self, loads: &[f64], threads: usize) -> Vec<DatacenterPoint> {
        if loads.is_empty() {
            return Vec::new();
        }
        let ctx = self.context_with_threads(threads);
        let spec = SweepSpec::new().axis("lc_load", loads.len());
        SweepExecutor::new(threads)
            .run(&spec, |cell| {
                self.evaluate_with(&ctx, loads[cell.get("lc_load")])
            })
            .into_results()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn colocation_saves_power_and_servers() {
        let dc = DatacenterComparison::new(DatacenterConfig::small());
        let point = dc.evaluate(0.3);
        assert!(
            point.coloc_power < point.segregated_power,
            "coloc {} vs segregated {}",
            point.coloc_power,
            point.segregated_power
        );
        assert!(point.coloc_servers < point.segregated_servers);
        assert!(point.worst_normalized_tail < 1.5);
    }

    #[test]
    fn lower_lc_load_absorbs_more_batch_work() {
        let dc = DatacenterComparison::new(DatacenterConfig::small());
        let low = dc.evaluate(0.15);
        let high = dc.evaluate(0.5);
        // At lower LC load more idle cycles are available, so fewer extra
        // batch servers are needed.
        assert!(low.coloc_servers <= high.coloc_servers);
    }

    #[test]
    #[should_panic(expected = "LC load")]
    fn rejects_out_of_range_load() {
        let dc = DatacenterComparison::new(DatacenterConfig::small());
        let _ = dc.evaluate(1.5);
    }
}
