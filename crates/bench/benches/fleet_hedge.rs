//! Hedging the tail at scale: a 32-server Rubik fleet with one rack
//! straggling 6x slow behind a failure-blind JSQ router, with and without
//! speculative hedging ([`RequestPolicy::with_hedging`](rubik::RequestPolicy)).
//!
//! The experiment lives in [`rubik_bench::hedge`]; this bench measures it
//! and records the `"fleet_hedge"` section of `BENCH_cluster.json`:
//!
//! 1. **Hedging fires where it should.** The straggling rack pushes
//!    attempts past the tracked latency quantile, duplicates launch onto
//!    healthy servers, and some of them win.
//! 2. **Hedging cuts the p99.** The recorded `p99_ms` pair shows the
//!    hedged run's tail below the unhedged baseline on the same trace and
//!    fault plan — the acceptance criterion for the hedging layer.
//! 3. **Nothing is double-counted.** Completions plus losses still
//!    partition the offered load exactly, duplicates notwithstanding.
//!
//! Criterion tracks the wall time of both runs (the hedging layer's
//! overhead) in `BENCH_controller.json`.
//!
//! Env knobs: `RUBIK_FLEET_HEDGE_REQUESTS` (default 60) sets requests per
//! server; `RUBIK_BENCH_SAMPLE_MS` / `RUBIK_BENCH_SAMPLES` are the usual
//! criterion smoke knobs.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use rubik_bench::hedge::{p99_latency, HedgeScenario};

const BENCH_JSON: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_controller.json");
const CLUSTER_JSON: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_cluster.json");

fn scenario() -> HedgeScenario {
    let mut scenario = HedgeScenario::default();
    if let Some(requests) = std::env::var("RUBIK_FLEET_HEDGE_REQUESTS")
        .ok()
        .and_then(|v| v.parse().ok())
    {
        scenario.requests_per_server = requests;
    }
    scenario
}

fn bench_fleet_hedge(c: &mut Criterion) {
    let scenario = scenario();
    let trace = scenario.trace();

    let mut group = c.benchmark_group("fleet_hedge");
    for (label, hedged) in [("unhedged", false), ("hedged", true)] {
        group.bench_with_input(BenchmarkId::new("mode", label), &hedged, |b, &hedged| {
            b.iter(|| {
                let (outcome, _) = scenario.run(&trace, hedged);
                assert_eq!(outcome.availability.offered, trace.len());
                outcome.fleet_energy // checksum against dead-code elimination
            })
        });
    }
    group.finish();

    // One measured run per mode for the recorded experiment numbers.
    let (off, off_results) = scenario.run(&trace, false);
    let (on, on_results) = scenario.run(&trace, true);
    let (p99_off, p99_on) = (p99_latency(&off_results), p99_latency(&on_results));
    let a = &on.availability;

    let section = format!(
        "{{\n    \"servers\": {},\n    \"per_rack\": {},\n    \
         \"straggling_rack\": {},\n    \"slowdown\": {},\n    \
         \"load_per_server\": {},\n    \"requests_per_server\": {},\n    \
         \"policy\": \"rubik-per-server\",\n    \"router\": \"jsq (failure-blind)\",\n    \
         \"hedge_quantile\": {},\n    \"hedge_min_delay_ms\": {:.4},\n    \
         \"unhedged\": {{\"p99_ms\": {:.4}, \"completed\": {}}},\n    \
         \"hedged\": {{\"p99_ms\": {:.4}, \"completed\": {}, \"hedged\": {}, \
         \"hedge_wins\": {}, \"hedge_cancelled\": {}}},\n    \
         \"hedging_cuts_p99\": {},\n    \"requests_conserved\": {}\n  }}",
        scenario.fleet,
        scenario.per_rack,
        scenario.straggling_rack,
        scenario.slowdown,
        scenario.load,
        scenario.requests_per_server,
        scenario.hedge_quantile,
        scenario.hedge_min_delay() * 1e3,
        p99_off * 1e3,
        off.availability.completed,
        p99_on * 1e3,
        a.completed,
        a.hedged,
        a.hedge_wins,
        a.hedge_cancelled,
        p99_on < p99_off,
        a.completed + a.lost == a.offered,
    );
    match rubik_bench::merge_bench_section(CLUSTER_JSON, "fleet_hedge", &section) {
        Ok(()) => println!("fleet_hedge: merged into {CLUSTER_JSON}"),
        Err(e) => eprintln!("fleet_hedge: could not write {CLUSTER_JSON}: {e}"),
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(5).output_json(BENCH_JSON);
    targets = bench_fleet_hedge
}
criterion_main!(benches);
