//! Edge accounting for [`AvailabilityStats`]: the corners where requests
//! fail in compound ways.
//!
//! 1. **Timeout-then-crash conservation.** A request that times out, is
//!    retried onto a server that then crashes, and finally exhausts its
//!    retry budget must be counted *lost* exactly once — `completed + lost
//!    == offered` even when the loss path runs through the timeout
//!    machinery first.
//! 2. **No successes means no goodput tail.** When zero requests complete
//!    (total crash) or every completion blows its deadline,
//!    `tail_latency_ok` is `None` — not a `0.0` that would masquerade as a
//!    perfect tail.

use rubik_cluster::{fleet_trace, Cluster, FaultPlan, Passthrough, RequestPolicy, RoundRobin};
use rubik_sim::{FixedFrequencyPolicy, SimConfig};
use rubik_telemetry::RequestEventKind;
use rubik_workloads::AppProfile;

/// Two servers, but `Passthrough` pins every arrival — and every retry — to
/// server 0, which is overloaded (~1.2x one core's capacity) and then
/// crashes for good. Early requests complete; queued work times out, backs
/// off, is re-offered to the same dead server, and runs out its budget.
#[test]
fn timeout_then_crash_losses_partition_the_offered_load() {
    let config = SimConfig::paper_simulated();
    let profile = AppProfile::masstree();
    let mean = profile.mean_service_time();
    let trace = fleet_trace(&profile, 0.6, 2, 300, 5);
    let duration = trace.duration();

    let cluster = Cluster::new(config.clone(), 2, Box::new(Passthrough), |_| {
        FixedFrequencyPolicy::new(config.dvfs.nominal())
    })
    .with_fault_plan(FaultPlan::new().crash(0, 0.5 * duration))
    .with_request_policy(RequestPolicy::new().with_timeout(4.0 * mean).with_retries(
        2,
        mean,
        8.0 * mean,
    ));
    let (outcome, _results, log) = cluster.run_traced(&trace);
    let a = outcome.availability;

    assert_eq!(a.offered, 300);
    assert!(a.completed > 0, "the pre-crash prefix must complete");
    assert!(a.lost > 0, "the stranded tail must be lost");
    assert!(a.timeouts > 0, "the overload must drive timeouts");
    assert_eq!(
        a.completed + a.lost,
        a.offered,
        "completions and losses must partition the offered load"
    );
    assert_eq!(log.completed(), a.completed);
    assert_eq!(log.lost(), a.lost);

    // The compound path actually happened: at least one request that was
    // never completed carries both a timeout and a terminal drop.
    let compound = log.requests.iter().filter(|r| {
        !r.completed()
            && r.events
                .iter()
                .any(|e| matches!(e.kind, RequestEventKind::TimedOut { .. }))
            && r.events
                .iter()
                .any(|e| matches!(e.kind, RequestEventKind::Dropped { .. }))
    });
    assert!(
        compound.count() > 0,
        "no lost request went through timeout-then-drop"
    );
}

/// A fleet that crashes outright before serving anything: zero completions,
/// and the goodput tail is absent rather than zero.
#[test]
fn zero_completions_leave_the_goodput_tail_absent() {
    let config = SimConfig::paper_simulated();
    let profile = AppProfile::masstree();
    let trace = fleet_trace(&profile, 0.4, 2, 100, 9);

    let cluster = Cluster::new(config.clone(), 2, Box::new(RoundRobin::new()), |_| {
        FixedFrequencyPolicy::new(config.dvfs.nominal())
    })
    .with_fault_plan(FaultPlan::new().crash(0, 0.0).crash(1, 0.0));
    let outcome = cluster.run(&trace);
    let a = outcome.availability;

    assert_eq!(a.completed, 0);
    assert_eq!(a.lost, a.offered);
    assert_eq!(a.goodput, 0);
    assert!(
        a.tail_latency_ok.is_none(),
        "no successful request can have a goodput tail, got {:?}",
        a.tail_latency_ok
    );
}

/// Every request completes, but an impossible deadline disqualifies them
/// all: the goodput tail is again `None`, while the plain tail is real.
#[test]
fn all_late_completions_leave_the_goodput_tail_absent() {
    let config = SimConfig::paper_simulated();
    let profile = AppProfile::masstree();
    let trace = fleet_trace(&profile, 0.4, 2, 100, 13);

    let cluster = Cluster::new(config.clone(), 2, Box::new(RoundRobin::new()), |_| {
        FixedFrequencyPolicy::new(config.dvfs.nominal())
    })
    .with_request_policy(RequestPolicy::new().with_deadline(1e-12));
    let outcome = cluster.run(&trace);
    let a = outcome.availability;

    assert_eq!(a.completed, a.offered, "everything still completes");
    assert_eq!(a.deadline_exceeded, a.offered);
    assert_eq!(a.goodput, 0);
    assert!(a.tail_latency_ok.is_none());
    assert!(outcome.tail_latency > 0.0, "the plain tail is unaffected");
}
