//! `rubik-sweep`: a deterministic parallel experiment engine for
//! fleet-scale load sweeps.
//!
//! Rubik's evaluation is a grid of independent simulation cells —
//! (scheme × app × load × seed) for the colocation study,
//! (policy × app × load) for the standalone sweeps. Each cell is cheap
//! (spectral table rebuilds, allocation-free decisions) but the grids are
//! large, and they are embarrassingly parallel: no cell reads another cell's
//! output. This crate fans such grids across OS threads and hands the
//! results back **in cell order**, so callers cannot observe the scheduling.
//!
//! # Grid model
//!
//! A [`SweepSpec`] declares the grid as a list of named axes, each with a
//! length:
//!
//! ```
//! use rubik_sweep::SweepSpec;
//!
//! let spec = SweepSpec::new()
//!     .axis("scheme", 4)
//!     .axis("app", 5)
//!     .axis("load", 6);
//! assert_eq!(spec.len(), 4 * 5 * 6);
//! ```
//!
//! The grid is the cartesian product of the axes, enumerated row-major with
//! the **last axis fastest** — exactly the order of the equivalent nested
//! `for` loops, outermost axis first. Each point is a [`Cell`] carrying its
//! flat index and its per-axis indices; the cell closure maps axis indices
//! back to domain values (`&apps[cell.get("app")]`).
//!
//! # Running a sweep
//!
//! [`SweepExecutor::run`] evaluates one closure per cell on a scoped
//! worker pool ([`std::thread::scope`]); workers pull the next cell from a
//! shared atomic counter (work stealing — no static partitioning, so
//! unbalanced cells cannot idle a worker). `threads == 0` means
//! [`std::thread::available_parallelism`]. The returned [`SweepRun`] holds
//! the per-cell results in cell order, per-cell wall times, and the sweep's
//! wall-clock time.
//!
//! For a grid that is naturally a slice of work items, [`parallel_map`]
//! (or [`SweepExecutor::map`]) skips the spec and fans the slice directly.
//!
//! # Determinism contract
//!
//! The engine guarantees: **a sweep's output is a pure function of the spec
//! and the cell closure, independent of thread count and scheduling** —
//! `run` with 1, 2, or N threads returns bit-for-bit identical result
//! vectors. This holds because results are collected by cell index, not
//! completion order, and is property-tested in this crate (and end-to-end on
//! the colocation grids in `rubik-coloc`).
//!
//! The caller's side of the contract: the cell closure must itself be
//! deterministic per cell — it may only read shared **immutable** context
//! (profiles, mixes, precomputed latency bounds) and must derive any RNG
//! seed from the cell, never from shared mutable state or iteration order.
//!
//! # Adding an axis
//!
//! Grids grow by one `.axis("name", len)` call; cells address the new axis
//! with `cell.get("name")`. Existing axes keep their enumeration order, so
//! adding a *trailing* axis of length 1 is a no-op for the result order —
//! a convenient way to thread a new dimension through an existing sweep
//! before giving it real values.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// One named dimension of a sweep grid.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Axis {
    name: String,
    len: usize,
}

impl Axis {
    /// The axis name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of points along this axis.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the axis is empty (never true for axes inside a spec).
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

/// A declarative sweep grid: the cartesian product of named axes.
///
/// Cells are enumerated row-major with the last axis fastest, i.e. in the
/// order of the equivalent nested loops (first axis outermost).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SweepSpec {
    axes: Vec<Axis>,
}

impl SweepSpec {
    /// An empty spec (a single implicit cell once at least one axis exists;
    /// zero axes means zero cells).
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends an axis. Axis names must be unique and lengths positive.
    pub fn axis(mut self, name: &str, len: usize) -> Self {
        assert!(len > 0, "axis {name:?} must have positive length");
        assert!(
            self.axes.iter().all(|a| a.name != name),
            "duplicate axis name {name:?}"
        );
        self.axes.push(Axis {
            name: name.to_string(),
            len,
        });
        self
    }

    /// The axes, in declaration order.
    pub fn axes(&self) -> &[Axis] {
        &self.axes
    }

    /// Total number of cells (product of axis lengths; 0 for a spec with no
    /// axes).
    pub fn len(&self) -> usize {
        if self.axes.is_empty() {
            0
        } else {
            self.axes.iter().map(|a| a.len).product()
        }
    }

    /// Whether the grid has no cells.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Decodes a flat cell index into a [`Cell`].
    pub fn cell(&self, index: usize) -> Cell<'_> {
        assert!(index < self.len(), "cell index {index} out of range");
        let mut indices = vec![0usize; self.axes.len()];
        let mut rest = index;
        for (slot, axis) in indices.iter_mut().zip(&self.axes).rev() {
            *slot = rest % axis.len;
            rest /= axis.len;
        }
        Cell {
            spec: self,
            index,
            indices,
        }
    }

    /// The flat index of the cell with the given per-axis indices.
    pub fn index_of(&self, indices: &[usize]) -> usize {
        assert_eq!(
            indices.len(),
            self.axes.len(),
            "expected one index per axis"
        );
        let mut flat = 0usize;
        for (i, axis) in indices.iter().zip(&self.axes) {
            assert!(
                *i < axis.len,
                "index {i} out of range for axis {:?}",
                axis.name
            );
            flat = flat * axis.len + i;
        }
        flat
    }

    /// Iterates over all cells in cell order.
    pub fn cells(&self) -> impl Iterator<Item = Cell<'_>> {
        (0..self.len()).map(|i| self.cell(i))
    }

    fn axis_position(&self, name: &str) -> usize {
        self.axes
            .iter()
            .position(|a| a.name == name)
            .unwrap_or_else(|| panic!("no axis named {name:?}"))
    }
}

/// One point of a sweep grid: its flat index plus per-axis indices.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Cell<'a> {
    spec: &'a SweepSpec,
    index: usize,
    indices: Vec<usize>,
}

impl Cell<'_> {
    /// The flat index of this cell in cell order.
    pub fn index(&self) -> usize {
        self.index
    }

    /// The per-axis indices, in axis declaration order.
    pub fn indices(&self) -> &[usize] {
        &self.indices
    }

    /// The index along the named axis. Panics on an unknown axis name.
    pub fn get(&self, axis: &str) -> usize {
        self.indices[self.spec.axis_position(axis)]
    }
}

/// Resolves a requested thread count: `0` means
/// [`std::thread::available_parallelism`] (1 if unknown).
pub fn resolve_threads(requested: usize) -> usize {
    if requested == 0 {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    } else {
        requested
    }
}

/// The result of one sweep: per-cell outputs in cell order plus timing.
#[derive(Debug, Clone)]
pub struct SweepRun<T> {
    /// Per-cell results, in cell order (index `i` is cell `i`).
    pub results: Vec<T>,
    /// Per-cell wall time, in cell order.
    pub cell_times: Vec<Duration>,
    /// Wall-clock time of the whole sweep.
    pub wall_time: Duration,
    /// Number of worker threads actually used.
    pub threads: usize,
}

impl<T> SweepRun<T> {
    /// Consumes the run, keeping only the results.
    pub fn into_results(self) -> Vec<T> {
        self.results
    }

    /// Sum of the per-cell wall times (the serial cost of the grid).
    pub fn total_cell_time(&self) -> Duration {
        self.cell_times.iter().sum()
    }

    /// The slowest cell's wall time (a lower bound on the sweep's wall time).
    pub fn max_cell_time(&self) -> Duration {
        self.cell_times.iter().max().copied().unwrap_or_default()
    }
}

/// A worker-pool executor for sweep grids.
///
/// Cheap to build per sweep; holds only the requested thread count and the
/// optional progress label.
#[derive(Debug, Clone, Default)]
pub struct SweepExecutor {
    threads: usize,
    progress: Option<String>,
}

impl SweepExecutor {
    /// An executor with the requested thread count (`0` = auto).
    pub fn new(threads: usize) -> Self {
        Self {
            threads,
            progress: None,
        }
    }

    /// A single-threaded executor (the serial reference path).
    pub fn serial() -> Self {
        Self::new(1)
    }

    /// Enables progress reporting to stderr under the given label
    /// (roughly every 10% of the grid).
    pub fn with_progress(mut self, label: &str) -> Self {
        self.progress = Some(label.to_string());
        self
    }

    /// The resolved number of worker threads this executor will use.
    pub fn threads(&self) -> usize {
        resolve_threads(self.threads)
    }

    /// Runs one closure per cell of `spec` and collects the results in cell
    /// order. See the crate docs for the determinism contract.
    ///
    /// Panics in a cell closure are propagated to the caller once all
    /// workers have stopped.
    pub fn run<T, F>(&self, spec: &SweepSpec, f: F) -> SweepRun<T>
    where
        T: Send,
        F: Fn(&Cell<'_>) -> T + Send + Sync,
    {
        let n = spec.len();
        let threads = self.threads().min(n.max(1));
        let start = Instant::now();
        let progress = Progress::new(self.progress.as_deref(), n);

        let mut slots: Vec<(usize, T, Duration)> = Vec::with_capacity(n);
        if threads <= 1 {
            for cell in spec.cells() {
                let t0 = Instant::now();
                let result = f(&cell);
                slots.push((cell.index(), result, t0.elapsed()));
                progress.tick();
            }
        } else {
            let next = AtomicUsize::new(0);
            let collected: Mutex<Vec<(usize, T, Duration)>> = Mutex::new(Vec::with_capacity(n));
            std::thread::scope(|scope| {
                for _ in 0..threads {
                    scope.spawn(|| {
                        let mut local = Vec::new();
                        loop {
                            let i = next.fetch_add(1, Ordering::Relaxed);
                            if i >= n {
                                break;
                            }
                            let cell = spec.cell(i);
                            let t0 = Instant::now();
                            let result = f(&cell);
                            local.push((i, result, t0.elapsed()));
                            progress.tick();
                        }
                        collected
                            .lock()
                            .expect("no cell result was collected while poisoned")
                            .extend(local);
                    });
                }
            });
            slots = collected.into_inner().expect("workers have stopped");
            // Completion order depends on scheduling; cell order does not.
            slots.sort_unstable_by_key(|&(i, _, _)| i);
        }

        debug_assert!(slots.iter().enumerate().all(|(i, s)| s.0 == i));
        let mut results = Vec::with_capacity(n);
        let mut cell_times = Vec::with_capacity(n);
        for (_, result, time) in slots {
            results.push(result);
            cell_times.push(time);
        }
        SweepRun {
            results,
            cell_times,
            wall_time: start.elapsed(),
            threads,
        }
    }

    /// Fans a slice of work items across the pool: `map(items, f)` equals
    /// `items.iter().map(f).collect()` but parallel, with the same
    /// determinism contract as [`SweepExecutor::run`].
    pub fn map<I, T, F>(&self, items: &[I], f: F) -> Vec<T>
    where
        I: Sync,
        T: Send,
        F: Fn(&I) -> T + Send + Sync,
    {
        self.map_indexed(items, |_, item| f(item))
    }

    /// Like [`SweepExecutor::map`], but the closure also receives the item's
    /// index — for cells that derive a per-item seed or label.
    pub fn map_indexed<I, T, F>(&self, items: &[I], f: F) -> Vec<T>
    where
        I: Sync,
        T: Send,
        F: Fn(usize, &I) -> T + Send + Sync,
    {
        if items.is_empty() {
            return Vec::new();
        }
        let spec = SweepSpec::new().axis("item", items.len());
        self.run(&spec, |cell| f(cell.index(), &items[cell.index()]))
            .into_results()
    }
}

/// Fans `items` across `threads` workers (`0` = auto) and returns the mapped
/// results in item order. Shorthand for [`SweepExecutor::map`].
pub fn parallel_map<I, T, F>(threads: usize, items: &[I], f: F) -> Vec<T>
where
    I: Sync,
    T: Send,
    F: Fn(&I) -> T + Send + Sync,
{
    SweepExecutor::new(threads).map(items, f)
}

/// Stderr progress reporting, shared by the serial and parallel paths.
#[derive(Debug)]
struct Progress<'a> {
    label: Option<&'a str>,
    total: usize,
    every: usize,
    done: AtomicUsize,
}

impl<'a> Progress<'a> {
    fn new(label: Option<&'a str>, total: usize) -> Self {
        Self {
            label,
            total,
            every: (total / 10).max(1),
            done: AtomicUsize::new(0),
        }
    }

    fn tick(&self) {
        let Some(label) = self.label else { return };
        let done = self.done.fetch_add(1, Ordering::Relaxed) + 1;
        if done.is_multiple_of(self.every) || done == self.total {
            eprintln!(
                "{label}: {done}/{} cells ({:.0}%)",
                self.total,
                done as f64 * 100.0 / self.total as f64
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// SplitMix64: a tiny pure mixer so cell outputs look like real
    /// simulation results without depending on another crate.
    fn mix(mut x: u64) -> u64 {
        x = x.wrapping_add(0x9e3779b97f4a7c15);
        x = (x ^ (x >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        x = (x ^ (x >> 27)).wrapping_mul(0x94d049bb133111eb);
        x ^ (x >> 31)
    }

    fn cell_value(seed: u64, index: usize) -> f64 {
        f64::from_bits(mix(seed ^ index as u64) >> 12 | 0x3ff0_0000_0000_0000)
    }

    #[test]
    fn spec_enumerates_last_axis_fastest() {
        let spec = SweepSpec::new().axis("a", 2).axis("b", 3);
        assert_eq!(spec.len(), 6);
        let order: Vec<Vec<usize>> = spec.cells().map(|c| c.indices().to_vec()).collect();
        assert_eq!(
            order,
            vec![
                vec![0, 0],
                vec![0, 1],
                vec![0, 2],
                vec![1, 0],
                vec![1, 1],
                vec![1, 2]
            ]
        );
        // index_of is the inverse of cell().
        for (i, idx) in order.iter().enumerate() {
            assert_eq!(spec.index_of(idx), i);
        }
    }

    #[test]
    fn cells_resolve_axes_by_name() {
        let spec = SweepSpec::new().axis("scheme", 4).axis("load", 6);
        let cell = spec.cell(17);
        assert_eq!(cell.get("scheme"), 17 / 6);
        assert_eq!(cell.get("load"), 17 % 6);
        assert_eq!(cell.index(), 17);
    }

    #[test]
    #[should_panic(expected = "no axis named")]
    fn unknown_axis_name_panics() {
        let spec = SweepSpec::new().axis("a", 2);
        let _ = spec.cell(0).get("b");
    }

    #[test]
    #[should_panic(expected = "duplicate axis")]
    fn duplicate_axis_name_panics() {
        let _ = SweepSpec::new().axis("a", 2).axis("a", 3);
    }

    #[test]
    #[should_panic(expected = "positive length")]
    fn zero_length_axis_panics() {
        let _ = SweepSpec::new().axis("a", 0);
    }

    #[test]
    fn empty_spec_runs_to_empty_results() {
        let spec = SweepSpec::new();
        let run = SweepExecutor::new(4).run(&spec, |c| c.index());
        assert!(run.results.is_empty());
        assert!(run.cell_times.is_empty());
    }

    #[test]
    fn parallel_results_are_bit_identical_to_serial() {
        // The determinism contract, property-tested: for several grid shapes
        // and seeds, every thread count returns byte-identical results.
        for seed in [1u64, 99, 2015] {
            for shape in [vec![7usize], vec![3, 5], vec![2, 3, 4]] {
                let mut spec = SweepSpec::new();
                for (i, &len) in shape.iter().enumerate() {
                    spec = spec.axis(&format!("axis{i}"), len);
                }
                let reference: Vec<u64> = SweepExecutor::serial()
                    .run(&spec, |c| cell_value(seed, c.index()).to_bits())
                    .into_results();
                for threads in [2usize, 3, 8] {
                    let run = SweepExecutor::new(threads)
                        .run(&spec, |c| cell_value(seed, c.index()).to_bits());
                    assert_eq!(run.results, reference, "threads={threads} shape={shape:?}");
                    assert_eq!(run.cell_times.len(), spec.len());
                }
            }
        }
    }

    #[test]
    fn map_matches_std_iterator_map() {
        let items: Vec<u64> = (0..57).collect();
        let expect: Vec<u64> = items.iter().map(|&x| mix(x)).collect();
        assert_eq!(parallel_map(1, &items, |&x| mix(x)), expect);
        assert_eq!(parallel_map(4, &items, |&x| mix(x)), expect);
        assert_eq!(parallel_map(0, &items, |&x| mix(x)), expect);
        assert!(parallel_map(3, &Vec::<u64>::new(), |&x| mix(x)).is_empty());
    }

    #[test]
    fn map_indexed_passes_item_positions() {
        let items = ["a", "b", "c"];
        let expect = vec!["0a".to_string(), "1b".to_string(), "2c".to_string()];
        for threads in [1usize, 2] {
            let got = SweepExecutor::new(threads).map_indexed(&items, |i, s| format!("{i}{s}"));
            assert_eq!(got, expect);
        }
    }

    #[test]
    fn more_threads_than_cells_is_capped() {
        let spec = SweepSpec::new().axis("a", 3);
        let run = SweepExecutor::new(64).run(&spec, |c| c.index());
        assert_eq!(run.results, vec![0, 1, 2]);
        assert!(run.threads <= 3);
    }

    #[test]
    fn zero_threads_resolves_to_available_parallelism() {
        assert_eq!(SweepExecutor::new(0).threads(), resolve_threads(0));
        assert!(resolve_threads(0) >= 1);
        assert_eq!(resolve_threads(5), 5);
    }

    #[test]
    fn worker_panics_propagate() {
        let spec = SweepSpec::new().axis("a", 8);
        let result = std::panic::catch_unwind(|| {
            SweepExecutor::new(2).run(&spec, |c| {
                if c.index() == 5 {
                    panic!("cell 5 exploded");
                }
                c.index()
            })
        });
        assert!(result.is_err());
    }

    #[test]
    fn timing_fields_are_consistent() {
        let spec = SweepSpec::new().axis("a", 4);
        let run = SweepExecutor::new(2).run(&spec, |c| {
            std::thread::sleep(Duration::from_millis(2));
            c.index()
        });
        assert_eq!(run.cell_times.len(), 4);
        assert!(run.total_cell_time() >= Duration::from_millis(8));
        assert!(run.max_cell_time() >= Duration::from_millis(2));
        assert!(run.wall_time >= run.max_cell_time());
    }
}
