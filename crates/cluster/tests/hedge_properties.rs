//! The hedging contract, property-tested:
//!
//! 1. **Disabled hedging is bitwise invisible.** A cluster with an empty
//!    [`FaultPlan`] and a default [`RequestPolicy`] (hedging off) is
//!    **bitwise identical** to a plain cluster, and an active rescue stack
//!    without hedging never touches the hedge counters.
//! 2. **Hedges conserve requests.** With speculative duplicates in flight,
//!    every offered request still completes *exactly once* or is counted
//!    lost: ids stay unique, cancelled losers leave no record, and
//!    `completed + lost == offered` holds exactly.
//! 3. **Hedged runs are thread-invariant.** The whole hedged grid is
//!    bit-identical at 1, 2, and 8 sweep threads.
//! 4. **Stochastic fault scenarios replay.** The same seed makes
//!    [`StochasticFaults`] compile byte-identical plans, and driving a
//!    fleet with one is bit-identical at any sweep thread count.

use rubik_cluster::{
    fleet_trace, Cluster, ClusterOutcome, FailureTopology, FaultPlan, HealthAware,
    JoinShortestQueue, RequestPolicy, RoundRobin, StochasticFaults,
};
use rubik_sim::{FixedFrequencyPolicy, RunResult, SimConfig};
use rubik_sweep::{SweepExecutor, SweepSpec};
use rubik_workloads::AppProfile;

fn result_bits(r: &RunResult) -> Vec<u64> {
    let mut bits = vec![r.end_time().to_bits()];
    for rec in r.records() {
        bits.extend_from_slice(&[
            rec.id,
            rec.arrival.to_bits(),
            rec.start.to_bits(),
            rec.completion.to_bits(),
            rec.queue_len_at_arrival as u64,
        ]);
    }
    for s in r.segments() {
        bits.extend_from_slice(&[
            s.start.to_bits(),
            s.end.to_bits(),
            s.freq.mhz() as u64,
            s.activity as u64,
        ]);
    }
    bits
}

fn outcome_bits(o: &ClusterOutcome) -> Vec<u64> {
    let a = &o.availability;
    let mut bits = vec![
        o.requests as u64,
        o.migrated_requests as u64,
        o.tail_latency.to_bits(),
        o.mean_latency.to_bits(),
        o.fleet_energy.to_bits(),
        o.fleet_power.to_bits(),
        o.duration.to_bits(),
        a.offered as u64,
        a.completed as u64,
        a.goodput as u64,
        a.lost as u64,
        a.deadline_exceeded as u64,
        a.timeouts as u64,
        a.retries as u64,
        a.requeued_on_failure as u64,
        a.salvaged_in_flight as u64,
        a.hedged as u64,
        a.hedge_wins as u64,
        a.hedge_cancelled as u64,
        a.tail_latency_ok.map_or(u64::MAX, f64::to_bits),
    ];
    for s in &o.per_server {
        bits.extend_from_slice(&[
            s.class as u64,
            s.requests as u64,
            s.tail_latency.to_bits(),
            s.energy.to_bits(),
            s.busy_time.to_bits(),
            s.idle_time.to_bits(),
            s.sleep_time.to_bits(),
            s.end_time.to_bits(),
            s.downtime.to_bits(),
        ]);
    }
    bits
}

/// The scenario hedging exists for: one server straggles hard for the
/// middle half of the run while the router stays failure-blind, so work
/// routed there stalls until its duplicate lands elsewhere.
fn straggler_plan(duration: f64) -> FaultPlan {
    FaultPlan::new().straggle(0, 0.20 * duration, 0.75 * duration, 8.0)
}

// ---------------------------------------------------------------------------
// Property 1: disabled hedging is bitwise invisible.
// ---------------------------------------------------------------------------

#[test]
fn disabled_hedging_is_bitwise_invisible_and_counts_nothing() {
    let config = SimConfig::paper_simulated();
    let profile = AppProfile::masstree();
    let trace = fleet_trace(&profile, 0.5, 4, 480, 23);

    let plain = Cluster::new(config.clone(), 4, Box::new(RoundRobin::new()), |_| {
        FixedFrequencyPolicy::new(config.dvfs.nominal())
    });
    let (plain_outcome, plain_results) = plain.run_with_results(&trace);

    // Hedging defaults to off: an otherwise-inert policy stays invisible.
    let unhedged = Cluster::new(config.clone(), 4, Box::new(RoundRobin::new()), |_| {
        FixedFrequencyPolicy::new(config.dvfs.nominal())
    })
    .with_fault_plan(FaultPlan::new())
    .with_request_policy(RequestPolicy::new());
    let (unhedged_outcome, unhedged_results) = unhedged.run_with_results(&trace);

    assert_eq!(
        outcome_bits(&plain_outcome),
        outcome_bits(&unhedged_outcome),
        "a hedging-disabled policy changed the ClusterOutcome"
    );
    for (i, (p, u)) in plain_results.iter().zip(&unhedged_results).enumerate() {
        assert_eq!(
            result_bits(p),
            result_bits(u),
            "a hedging-disabled policy changed server {i}'s RunResult"
        );
    }

    // An *active* rescue stack (timeouts, retries, a straggler to rescue
    // from) still never touches the hedge counters while hedging is off.
    let mean = profile.mean_service_time();
    let rescued = Cluster::new(
        config.clone(),
        4,
        Box::new(HealthAware::new(JoinShortestQueue::new())),
        |_| FixedFrequencyPolicy::new(config.dvfs.nominal()),
    )
    .with_fault_plan(straggler_plan(trace.duration()))
    .with_request_policy(RequestPolicy::new().with_timeout(8.0 * mean).with_retries(
        4,
        mean,
        16.0 * mean,
    ));
    let a = rescued.run(&trace).availability;
    assert_eq!(
        (a.hedged, a.hedge_wins, a.hedge_cancelled),
        (0, 0, 0),
        "hedge counters moved with hedging disabled"
    );
}

// ---------------------------------------------------------------------------
// Properties 2 + 3: hedges conserve requests, bit-identically at any
// sweep thread count.
// ---------------------------------------------------------------------------

#[test]
fn hedged_runs_conserve_requests_and_are_thread_invariant() {
    let fleets = [3usize, 6];
    let seeds = [5u64, 71];
    let spec = SweepSpec::new()
        .axis("fleet", fleets.len())
        .axis("seed", seeds.len());

    let cell = |c: &rubik_sweep::Cell<'_>| {
        let config = SimConfig::paper_simulated();
        let profile = AppProfile::masstree();
        let fleet = fleets[c.get("fleet")];
        let requests = 150 * fleet;
        let trace = fleet_trace(&profile, 0.5, fleet, requests, seeds[c.get("seed")]);
        let mean = profile.mean_service_time();

        // Failure-blind JSQ keeps feeding the straggler; hedging is the
        // only rescue configured, so every win below is hedging's.
        let cluster = Cluster::new(
            config.clone(),
            fleet,
            Box::new(JoinShortestQueue::new()),
            |_| FixedFrequencyPolicy::new(config.dvfs.nominal()),
        )
        .with_fault_plan(straggler_plan(trace.duration()))
        .with_request_policy(RequestPolicy::new().with_hedging(0.95, 2.0 * mean));
        let (outcome, results) = cluster.run_with_results(&trace);
        let a = outcome.availability;

        // The straggler forces speculation, and some duplicates win.
        assert!(a.hedged > 0, "no hedges fired under an 8x straggler");
        assert!(a.hedge_wins > 0, "no duplicate ever beat its primary");
        assert!(
            a.hedge_wins <= a.hedge_cancelled && a.hedge_cancelled <= a.hedged,
            "hedge accounting inconsistent: {} wins, {} cancelled, {} hedged",
            a.hedge_wins,
            a.hedge_cancelled,
            a.hedged
        );

        // Conservation: duplicates never double-complete. Every offered
        // request completes exactly once (original id, original arrival)
        // or is lost; cancelled losers leave no record anywhere.
        assert_eq!(a.offered, requests);
        assert_eq!(a.completed + a.lost, a.offered);
        let mut seen: Vec<(u64, u64)> = results
            .iter()
            .flat_map(|r| {
                r.records()
                    .iter()
                    .map(|rec| (rec.id, rec.arrival.to_bits()))
            })
            .collect();
        seen.sort_unstable();
        assert_eq!(seen.len(), a.completed, "records disagree with the stats");
        for w in seen.windows(2) {
            assert_ne!(w[0].0, w[1].0, "request {} completed twice", w[0].0);
        }
        for &(id, arrival) in &seen {
            assert_eq!(
                arrival,
                trace.requests()[id as usize].arrival.to_bits(),
                "request {id} lost its original arrival through hedging"
            );
        }
        outcome_bits(&outcome)
    };

    let reference = SweepExecutor::serial().run(&spec, cell).into_results();
    for threads in [2usize, 8] {
        let swept = SweepExecutor::new(threads).run(&spec, cell).into_results();
        assert_eq!(
            swept, reference,
            "hedged grid diverged at {threads} threads"
        );
    }
}

// ---------------------------------------------------------------------------
// Property 4: stochastic fault scenarios replay bit-exactly.
// ---------------------------------------------------------------------------

#[test]
fn stochastic_fault_scenarios_replay_bit_exactly_across_threads() {
    let seeds = [9u64, 33];
    let spec = SweepSpec::new().axis("seed", seeds.len());

    let cell = |c: &rubik_sweep::Cell<'_>| {
        let config = SimConfig::paper_simulated();
        let profile = AppProfile::masstree();
        let seed = seeds[c.get("seed")];
        let fleet = 8;
        let trace = fleet_trace(&profile, 0.4, fleet, 120 * fleet, seed);
        let mean = profile.mean_service_time();

        // Rack- and server-level renewal processes over the whole run,
        // compiled fresh in every cell: byte-identical each time.
        let topo = FailureTopology::grid(fleet, 4, 2);
        let generator = StochasticFaults::new()
            .with_server_failures(trace.duration(), 0.02 * trace.duration())
            .with_rack_failures(1.5 * trace.duration(), 0.05 * trace.duration())
            .with_recovery_jitter(0.01 * trace.duration());
        let plan = generator.compile(&topo, trace.duration(), seed);
        assert_eq!(
            plan,
            generator.compile(&topo, trace.duration(), seed),
            "same seed must compile the same plan"
        );
        assert!(!plan.is_empty(), "these rates must draw failures");

        let cluster = Cluster::new(
            config.clone(),
            fleet,
            Box::new(HealthAware::new(JoinShortestQueue::new())),
            |_| FixedFrequencyPolicy::new(config.dvfs.nominal()),
        )
        .with_fault_plan(plan)
        .with_request_policy(
            RequestPolicy::new()
                .with_timeout(8.0 * mean)
                .with_retries(6, mean, 16.0 * mean)
                .with_jitter_seed(seed)
                .with_hedging(0.95, 2.0 * mean)
                .draining_on_crash()
                .salvaging_in_flight(),
        );
        let outcome = cluster.run(&trace);
        let a = outcome.availability;
        assert_eq!(a.completed + a.lost, a.offered);
        assert!(
            a.completed >= 3 * a.offered / 4,
            "rescue collapsed: {} of {} completed",
            a.completed,
            a.offered
        );
        outcome_bits(&outcome)
    };

    let reference = SweepExecutor::serial().run(&spec, cell).into_results();
    for threads in [2usize, 8] {
        let swept = SweepExecutor::new(threads).run(&spec, cell).into_results();
        assert_eq!(
            swept, reference,
            "stochastic grid diverged at {threads} threads"
        );
    }
}
