//! The event-driven single-core server simulator.
//!
//! One core serves a FIFO queue of requests from a [`Trace`]. A request with
//! compute demand `C` cycles and memory-bound time `M` seconds, served
//! uninterrupted at frequency `f`, takes `C/f + M` seconds. Compute and
//! memory progress are interleaved proportionally, so frequency changes in
//! the middle of a request take effect smoothly and the controller can
//! observe how many compute cycles (ω) the running request has already
//! executed.
//!
//! The simulator invokes the [`DvfsPolicy`] on every arrival, every
//! completion, and on a periodic tick; requested frequency changes take
//! effect after the configured V/F transition latency, during which the core
//! keeps running at the old frequency (paper Sec. 2.1 / Table 2).
//!
//! # Scratch-state snapshots
//!
//! Policies receive the [`ServerState`] by reference at every decision
//! point. The simulator owns **one** scratch `ServerState` per run and
//! refreshes it in place before each callback ([`SimState::snapshot`]):
//! `queued` is a `clear()`-and-`extend()` of a retained `Vec`, so after the
//! queue's high-water mark is reached the event loop performs **zero heap
//! allocations per event** for policy snapshots. Policies must therefore
//! treat the state as valid only for the duration of the callback (the
//! borrow rules already enforce this — `ServerState` is passed as `&`), and
//! clone it if they need to retain history.

use crate::config::{IdleMode, SimConfig};
use crate::freq::Freq;
use crate::policy::{DvfsPolicy, InServiceView, PolicyDecision, QueuedView, ServerState};
use crate::request::{RequestRecord, RequestSpec, Trace};
use crate::result::{CoreActivity, RunResult, Segment};
use std::collections::VecDeque;

/// Tolerance used to batch events that occur at "the same" instant.
const TIME_EPS: f64 = 1e-12;

/// The single-core server simulator.
///
/// `Server` is stateless across runs: [`Server::run`] consumes a trace and a
/// policy and produces a [`RunResult`]. This makes it cheap to sweep loads,
/// policies, and seeds from the benchmark harness.
#[derive(Debug, Clone, Default)]
pub struct Server {
    config: SimConfig,
}

#[derive(Debug, Clone, Copy)]
struct Running {
    idx: usize,
    start: f64,
    /// Fraction of the request's work completed, in `[0, 1]`.
    progress: f64,
    /// Remaining core wake-up time before progress accrues (deep sleep only).
    wakeup_remaining: f64,
    queue_len_at_arrival: usize,
}

struct SimState<'a> {
    trace: &'a [RequestSpec],
    now: f64,
    queue: VecDeque<(usize, usize)>, // (trace index, queue length at arrival)
    running: Option<Running>,
    current_freq: Freq,
    target_freq: Freq,
    pending_transition: Option<(Freq, f64)>,
    next_arrival: usize,
    next_tick: f64,
    asleep: bool,
    records: Vec<RequestRecord>,
    segments: Vec<Segment>,
    /// Reusable policy-visible snapshot; refreshed in place before every
    /// policy callback so the event loop allocates nothing per event.
    scratch: ServerState,
}

impl SimState<'_> {
    /// Refreshes the scratch [`ServerState`] from the live simulation state
    /// and returns it. The `queued` vector is cleared and refilled, reusing
    /// its capacity; no allocation occurs once the queue's high-water mark
    /// has been reached.
    fn snapshot(&mut self) -> &ServerState {
        let trace = self.trace;
        let scratch = &mut self.scratch;
        scratch.now = self.now;
        scratch.current_freq = self.current_freq;
        scratch.target_freq = self.target_freq;
        scratch.in_service = self.running.as_ref().map(|r| {
            let spec = &trace[r.idx];
            InServiceView {
                id: spec.id,
                arrival: spec.arrival,
                elapsed_compute_cycles: r.progress * spec.compute_cycles,
                elapsed_membound_time: r.progress * spec.membound_time,
                oracle_compute_cycles: spec.compute_cycles,
                oracle_membound_time: spec.membound_time,
                class: spec.class,
            }
        });
        scratch.queued.clear();
        scratch.queued.extend(self.queue.iter().map(|&(idx, _)| {
            let spec = &trace[idx];
            QueuedView {
                id: spec.id,
                arrival: spec.arrival,
                oracle_compute_cycles: spec.compute_cycles,
                oracle_membound_time: spec.membound_time,
                class: spec.class,
            }
        }));
        scratch
    }
}

impl Server {
    /// Creates a server with the given configuration.
    pub fn new(config: SimConfig) -> Self {
        Self { config }
    }

    /// The server's configuration.
    pub fn config(&self) -> &SimConfig {
        &self.config
    }

    /// Runs the trace under the given policy and returns the per-request
    /// records and the frequency/activity timeline.
    pub fn run(&self, trace: &Trace, policy: &mut dyn DvfsPolicy) -> RunResult {
        let start_freq = policy
            .idle_frequency()
            .unwrap_or_else(|| self.config.dvfs.nominal());
        let mut st = SimState {
            trace: trace.requests(),
            now: 0.0,
            queue: VecDeque::new(),
            running: None,
            current_freq: start_freq,
            target_freq: start_freq,
            pending_transition: None,
            next_arrival: 0,
            next_tick: self.config.tick_interval,
            asleep: matches!(self.config.idle_mode, IdleMode::Sleep { .. }),
            records: Vec::with_capacity(trace.len()),
            segments: Vec::new(),
            scratch: ServerState {
                now: 0.0,
                current_freq: start_freq,
                target_freq: start_freq,
                in_service: None,
                queued: Vec::new(),
            },
        };

        while let Some(next_time) = self.next_event_time(&st) {
            self.advance_to(&mut st, next_time);
            self.handle_events(&mut st, policy);
        }

        let end = st.now;
        RunResult::new(st.records, st.segments, end)
    }

    fn service_time(&self, spec: &RequestSpec, freq: Freq) -> f64 {
        spec.service_time_at(freq)
    }

    fn completion_time(&self, st: &SimState<'_>) -> Option<f64> {
        let r = st.running.as_ref()?;
        let spec = &st.trace[r.idx];
        let total = self.service_time(spec, st.current_freq);
        let remaining = (1.0 - r.progress).max(0.0) * total + r.wakeup_remaining;
        Some(st.now + remaining)
    }

    fn next_event_time(&self, st: &SimState<'_>) -> Option<f64> {
        let mut next: Option<f64> = None;
        let mut consider = |t: Option<f64>| {
            if let Some(t) = t {
                next = Some(match next {
                    Some(n) => n.min(t),
                    None => t,
                });
            }
        };

        consider(st.trace.get(st.next_arrival).map(|r| r.arrival.max(st.now)));
        consider(self.completion_time(st));
        consider(st.pending_transition.map(|(_, t)| t));

        // Ticks only matter while there is or will be work; without this the
        // loop would tick forever after the last completion.
        let more_work =
            st.next_arrival < st.trace.len() || st.running.is_some() || !st.queue.is_empty();
        if more_work {
            consider(Some(st.next_tick.max(st.now)));
        }
        next
    }

    fn advance_to(&self, st: &mut SimState<'_>, t: f64) {
        let t = t.max(st.now);
        if t > st.now + TIME_EPS {
            let activity = if st.running.is_some() {
                CoreActivity::Busy
            } else if st.asleep {
                CoreActivity::Sleep
            } else {
                CoreActivity::Idle
            };
            push_segment(&mut st.segments, st.now, t, st.current_freq, activity);

            if let Some(r) = st.running.as_mut() {
                let mut dt = t - st.now;
                if r.wakeup_remaining > 0.0 {
                    let consumed = r.wakeup_remaining.min(dt);
                    r.wakeup_remaining -= consumed;
                    dt -= consumed;
                }
                if dt > 0.0 {
                    let spec = &st.trace[r.idx];
                    let total = self.service_time(spec, st.current_freq);
                    if total > 0.0 {
                        r.progress = (r.progress + dt / total).min(1.0);
                    } else {
                        r.progress = 1.0;
                    }
                }
            }
        }
        st.now = t;
    }

    fn handle_events(&self, st: &mut SimState<'_>, policy: &mut dyn DvfsPolicy) {
        // 1. Apply a V/F transition that has become effective.
        if let Some((f, t)) = st.pending_transition {
            if t <= st.now + TIME_EPS {
                st.current_freq = f;
                st.pending_transition = None;
            }
        }

        // 2. Completion of the running request.
        if let Some(t) = self.completion_time(st) {
            if t <= st.now + TIME_EPS {
                self.complete_running(st, policy);
            }
        }

        // 3. Arrivals.
        while st
            .trace
            .get(st.next_arrival)
            .is_some_and(|r| r.arrival <= st.now + TIME_EPS)
        {
            self.handle_arrival(st, policy);
        }

        // 4. Periodic tick.
        if st.next_tick <= st.now + TIME_EPS {
            st.next_tick += self.config.tick_interval;
            let decision = policy.on_tick(st.snapshot());
            self.apply_decision(st, decision);
        }
    }

    fn complete_running(&self, st: &mut SimState<'_>, policy: &mut dyn DvfsPolicy) {
        let running = st
            .running
            .take()
            .expect("completion without a running request");
        let spec = st.trace[running.idx];
        let record = RequestRecord {
            id: spec.id,
            arrival: spec.arrival,
            start: running.start,
            completion: st.now,
            compute_cycles: spec.compute_cycles,
            membound_time: spec.membound_time,
            queue_len_at_arrival: running.queue_len_at_arrival,
            class: spec.class,
        };
        st.records.push(record);

        // Start the next queued request, if any.
        if let Some((idx, qlen)) = st.queue.pop_front() {
            st.running = Some(Running {
                idx,
                start: st.now,
                progress: 0.0,
                wakeup_remaining: 0.0,
                queue_len_at_arrival: qlen,
            });
        } else if matches!(self.config.idle_mode, IdleMode::Sleep { .. }) {
            st.asleep = true;
        }

        let decision = policy.on_completion(st.snapshot(), &record);
        self.apply_decision(st, decision);
    }

    fn handle_arrival(&self, st: &mut SimState<'_>, policy: &mut dyn DvfsPolicy) {
        let idx = st.next_arrival;
        st.next_arrival += 1;
        let pending_before = st.queue.len() + usize::from(st.running.is_some());

        if st.running.is_none() {
            let wakeup = match (st.asleep, self.config.idle_mode) {
                (true, IdleMode::Sleep { wakeup_latency }) => wakeup_latency,
                _ => 0.0,
            };
            st.asleep = false;
            st.running = Some(Running {
                idx,
                start: st.now,
                progress: 0.0,
                wakeup_remaining: wakeup,
                queue_len_at_arrival: pending_before,
            });
        } else {
            st.queue.push_back((idx, pending_before));
        }

        let decision = policy.on_arrival(st.snapshot());
        self.apply_decision(st, decision);
    }

    fn apply_decision(&self, st: &mut SimState<'_>, decision: PolicyDecision) {
        let f = match decision {
            PolicyDecision::Keep => return,
            PolicyDecision::SetFrequency(f) => f,
        };
        assert!(
            self.config.dvfs.is_level(f),
            "policy requested {f}, which is not an available DVFS level"
        );
        if f == st.target_freq {
            return;
        }
        st.target_freq = f;
        let latency = self.config.dvfs.transition_latency();
        if latency <= 0.0 {
            st.current_freq = f;
            st.pending_transition = None;
        } else {
            st.pending_transition = Some((f, st.now + latency));
        }
    }
}

fn push_segment(
    segments: &mut Vec<Segment>,
    start: f64,
    end: f64,
    freq: Freq,
    activity: CoreActivity,
) {
    if end <= start {
        return;
    }
    if let Some(last) = segments.last_mut() {
        if last.freq == freq && last.activity == activity && (last.end - start).abs() < TIME_EPS {
            last.end = end;
            return;
        }
    }
    segments.push(Segment {
        start,
        end,
        freq,
        activity,
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::freq::DvfsConfig;
    use crate::policy::FixedFrequencyPolicy;

    fn cfg() -> SimConfig {
        SimConfig::paper_simulated()
    }

    fn nominal() -> Freq {
        cfg().dvfs.nominal()
    }

    #[test]
    fn empty_trace_produces_empty_result() {
        let server = Server::new(cfg());
        let mut policy = FixedFrequencyPolicy::new(nominal());
        let result = server.run(&Trace::default(), &mut policy);
        assert!(result.records().is_empty());
        assert!(result.segments().is_empty());
    }

    #[test]
    fn single_request_latency_matches_service_time() {
        // 2.4 M cycles at 2.4 GHz = 1 ms, plus 0.5 ms memory time.
        let trace = Trace::new(vec![RequestSpec::new(0, 0.0, 2.4e6, 0.5e-3)]);
        let server = Server::new(cfg());
        let mut policy = FixedFrequencyPolicy::new(nominal());
        let result = server.run(&trace, &mut policy);
        assert_eq!(result.records().len(), 1);
        assert!((result.records()[0].latency() - 1.5e-3).abs() < 1e-9);
        assert!((result.records()[0].queueing_delay()).abs() < 1e-12);
    }

    #[test]
    fn back_to_back_requests_queue_fifo() {
        // Both arrive at t=0; the second waits for the first.
        let trace = Trace::new(vec![
            RequestSpec::new(0, 0.0, 2.4e6, 0.0),
            RequestSpec::new(1, 0.0, 2.4e6, 0.0),
        ]);
        let server = Server::new(cfg());
        let mut policy = FixedFrequencyPolicy::new(nominal());
        let result = server.run(&trace, &mut policy);
        assert_eq!(result.records().len(), 2);
        let r0 = &result.records()[0];
        let r1 = &result.records()[1];
        assert_eq!(r0.id, 0);
        assert_eq!(r1.id, 1);
        assert!((r0.latency() - 1e-3).abs() < 1e-9);
        assert!((r1.latency() - 2e-3).abs() < 1e-9);
        assert!((r1.queueing_delay() - 1e-3).abs() < 1e-9);
        assert_eq!(r0.queue_len_at_arrival, 0);
        assert_eq!(r1.queue_len_at_arrival, 1);
    }

    #[test]
    fn idle_gaps_are_recorded_as_idle_segments() {
        let trace = Trace::new(vec![
            RequestSpec::new(0, 0.0, 2.4e6, 0.0),
            RequestSpec::new(1, 0.01, 2.4e6, 0.0),
        ]);
        let server = Server::new(cfg());
        let mut policy = FixedFrequencyPolicy::new(nominal());
        let result = server.run(&trace, &mut policy);
        let res = result.freq_residency();
        assert!((res.busy_time() - 2e-3).abs() < 1e-9);
        assert!((res.idle_time() - (0.01 - 1e-3)).abs() < 1e-9);
        assert!(res.sleep < 1e-12);
    }

    #[test]
    fn sleep_mode_records_sleep_and_delays_wakeup() {
        let config = cfg().with_idle_mode(IdleMode::Sleep {
            wakeup_latency: 100e-6,
        });
        let trace = Trace::new(vec![
            RequestSpec::new(0, 0.0, 2.4e6, 0.0),
            RequestSpec::new(1, 0.01, 2.4e6, 0.0),
        ]);
        let server = Server::new(config);
        let mut policy = FixedFrequencyPolicy::new(nominal());
        let result = server.run(&trace, &mut policy);
        // Second request pays the 100 µs wake-up.
        assert!((result.records()[1].latency() - (1e-3 + 100e-6)).abs() < 1e-9);
        let res = result.freq_residency();
        assert!(res.sleep > 0.0);
        assert!(res.idle_time() < 1e-12);
    }

    #[test]
    fn lower_frequency_stretches_only_compute() {
        let trace = Trace::new(vec![RequestSpec::new(0, 0.0, 2.4e6, 1e-3)]);
        let server = Server::new(cfg());
        let mut fast = FixedFrequencyPolicy::new(Freq::from_mhz(2400));
        let mut slow = FixedFrequencyPolicy::new(Freq::from_mhz(1200));
        let lat_fast = server.run(&trace, &mut fast).records()[0].latency();
        let lat_slow = server.run(&trace, &mut slow).records()[0].latency();
        assert!((lat_fast - 2e-3).abs() < 1e-9);
        assert!((lat_slow - 3e-3).abs() < 1e-9);
    }

    #[test]
    fn frequency_transition_latency_delays_effect() {
        // A policy that asks for max frequency on the first arrival. With a
        // huge transition latency the request still completes at the starting
        // frequency.
        struct BoostOnArrival;
        impl DvfsPolicy for BoostOnArrival {
            fn name(&self) -> &str {
                "boost"
            }
            fn on_arrival(&mut self, _state: &ServerState) -> PolicyDecision {
                PolicyDecision::SetFrequency(Freq::from_mhz(3400))
            }
            fn on_completion(&mut self, _s: &ServerState, _r: &RequestRecord) -> PolicyDecision {
                PolicyDecision::Keep
            }
            fn idle_frequency(&self) -> Option<Freq> {
                Some(Freq::from_mhz(800))
            }
        }

        let trace = Trace::new(vec![RequestSpec::new(0, 0.0, 0.8e6, 0.0)]); // 1 ms at 0.8 GHz
        let slow_transition = SimConfig::default()
            .with_dvfs(DvfsConfig::haswell_like().with_transition_latency(10.0));
        let server = Server::new(slow_transition);
        let lat = server.run(&trace, &mut BoostOnArrival).records()[0].latency();
        assert!((lat - 1e-3).abs() < 1e-9);

        // With an instantaneous transition the request runs at 3.4 GHz.
        let fast_transition =
            SimConfig::default().with_dvfs(DvfsConfig::haswell_like().with_transition_latency(0.0));
        let server = Server::new(fast_transition);
        let lat = server.run(&trace, &mut BoostOnArrival).records()[0].latency();
        assert!((lat - 0.8e6 / 3.4e9).abs() < 1e-9);
    }

    #[test]
    fn mid_request_frequency_change_blends_progress() {
        // Request needs 2.4e6 cycles. It starts at 0.8 GHz; after 1 ms a
        // second (zero-work) arrival triggers a boost to 2.4 GHz (instant
        // transitions). In the first 1 ms it completes 0.8e6 cycles; the
        // remaining 1.6e6 cycles take 1/1.5 ms at 2.4 GHz.
        struct BoostOnSecondArrival {
            seen: usize,
        }
        impl DvfsPolicy for BoostOnSecondArrival {
            fn name(&self) -> &str {
                "boost-second"
            }
            fn on_arrival(&mut self, _state: &ServerState) -> PolicyDecision {
                self.seen += 1;
                if self.seen == 2 {
                    PolicyDecision::SetFrequency(Freq::from_mhz(2400))
                } else {
                    PolicyDecision::Keep
                }
            }
            fn on_completion(&mut self, _s: &ServerState, _r: &RequestRecord) -> PolicyDecision {
                PolicyDecision::Keep
            }
            fn idle_frequency(&self) -> Option<Freq> {
                Some(Freq::from_mhz(800))
            }
        }

        let trace = Trace::new(vec![
            RequestSpec::new(0, 0.0, 2.4e6, 0.0),
            RequestSpec::new(1, 1e-3, 0.0, 0.0),
        ]);
        let config =
            SimConfig::default().with_dvfs(DvfsConfig::haswell_like().with_transition_latency(0.0));
        let server = Server::new(config);
        let result = server.run(&trace, &mut BoostOnSecondArrival { seen: 0 });
        let r0 = result.records().iter().find(|r| r.id == 0).unwrap();
        let expected = 1e-3 + 1.6e6 / 2.4e9;
        assert!(
            (r0.latency() - expected).abs() < 1e-8,
            "latency {} vs expected {}",
            r0.latency(),
            expected
        );
    }

    #[test]
    fn segments_cover_the_run_without_gaps() {
        let trace = Trace::new(vec![
            RequestSpec::new(0, 0.0, 2.4e6, 0.0),
            RequestSpec::new(1, 0.003, 2.4e6, 0.0),
            RequestSpec::new(2, 0.004, 2.4e6, 0.0),
        ]);
        let server = Server::new(cfg());
        let mut policy = FixedFrequencyPolicy::new(nominal());
        let result = server.run(&trace, &mut policy);
        let segs = result.segments();
        assert!(!segs.is_empty());
        assert!(segs[0].start.abs() < 1e-12);
        for w in segs.windows(2) {
            assert!((w[1].start - w[0].end).abs() < 1e-9, "gap in timeline");
        }
        assert!((segs.last().unwrap().end - result.end_time()).abs() < 1e-9);
    }

    #[test]
    fn all_requests_complete_and_ids_are_unique() {
        let trace: Trace = (0..200)
            .map(|i| RequestSpec::new(i, i as f64 * 2e-4, 1.0e6, 1e-5))
            .collect();
        let server = Server::new(cfg());
        let mut policy = FixedFrequencyPolicy::new(nominal());
        let result = server.run(&trace, &mut policy);
        assert_eq!(result.records().len(), 200);
        let mut ids: Vec<u64> = result.records().iter().map(|r| r.id).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 200);
        for r in result.records() {
            assert!(r.completion >= r.start);
            assert!(r.start >= r.arrival);
        }
    }

    #[test]
    fn snapshots_reuse_one_scratch_buffer() {
        // Structural guarantee of the scratch-state API: every policy
        // callback sees the same retained `queued` buffer. Its pointer may
        // move while capacity grows to the queue's high-water mark, but must
        // then stay fixed — i.e. zero steady-state allocations per event.
        struct PtrRecorder {
            ptrs: Vec<(*const QueuedView, usize)>,
        }
        impl DvfsPolicy for PtrRecorder {
            fn name(&self) -> &str {
                "ptr-recorder"
            }
            fn on_arrival(&mut self, state: &ServerState) -> PolicyDecision {
                self.ptrs
                    .push((state.queued.as_ptr(), state.queued.capacity()));
                PolicyDecision::Keep
            }
            fn on_completion(&mut self, state: &ServerState, _r: &RequestRecord) -> PolicyDecision {
                self.ptrs
                    .push((state.queued.as_ptr(), state.queued.capacity()));
                PolicyDecision::Keep
            }
        }

        // One large burst up front sets the queue's high-water mark, then
        // spaced-out requests keep generating events at shallow depth.
        let trace: Trace = (0..50)
            .map(|i| RequestSpec::new(i, 0.0, 1.2e6, 0.0))
            .chain((50..400).map(|i| RequestSpec::new(i, 0.05 + i as f64 * 1e-3, 1.2e6, 0.0)))
            .collect();
        let mut recorder = PtrRecorder { ptrs: Vec::new() };
        let _ = Server::new(cfg()).run(&trace, &mut recorder);

        assert!(recorder.ptrs.len() >= 800); // arrivals + completions
        let max_cap = recorder.ptrs.iter().map(|&(_, c)| c).max().unwrap();
        assert!(max_cap >= 7, "burst of 8 should queue at least 7");
        // Once capacity reaches its high-water mark, the pointer never
        // changes again: the buffer is reused for every later event.
        let first_at_max = recorder
            .ptrs
            .iter()
            .position(|&(_, c)| c == max_cap)
            .unwrap();
        let steady = &recorder.ptrs[first_at_max..];
        let ptr = steady[0].0;
        assert!(steady.len() > recorder.ptrs.len() / 2);
        for &(p, c) in steady {
            assert_eq!(p, ptr, "snapshot buffer reallocated after high-water mark");
            assert_eq!(c, max_cap);
        }
    }

    #[test]
    #[should_panic(expected = "not an available DVFS level")]
    fn policy_cannot_request_invalid_level() {
        struct BadPolicy;
        impl DvfsPolicy for BadPolicy {
            fn name(&self) -> &str {
                "bad"
            }
            fn on_arrival(&mut self, _state: &ServerState) -> PolicyDecision {
                PolicyDecision::SetFrequency(Freq::from_mhz(2500))
            }
            fn on_completion(&mut self, _s: &ServerState, _r: &RequestRecord) -> PolicyDecision {
                PolicyDecision::Keep
            }
        }
        let trace = Trace::new(vec![RequestSpec::new(0, 0.0, 1e6, 0.0)]);
        let server = Server::new(cfg());
        let _ = server.run(&trace, &mut BadPolicy);
    }
}
