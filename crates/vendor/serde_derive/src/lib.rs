//! No-op derive macros for `Serialize` / `Deserialize`.
//!
//! The offline build cannot fetch the real `serde_derive`, and nothing in the
//! workspace relies on generated serialization code (trace persistence is
//! hand-rolled JSON in `rubik-workloads::trace_io`). These derives accept the
//! same syntax, including `#[serde(...)]` attributes, and expand to nothing,
//! so the type annotations remain in place for a later switch to real serde.

use proc_macro::TokenStream;

/// Accepts `#[derive(Serialize)]` and expands to nothing.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Accepts `#[derive(Deserialize)]` and expands to nothing.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
