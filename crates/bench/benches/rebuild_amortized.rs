//! Amortized cost of the periodic table rebuild (paper Sec. 4.2: the tables
//! are refreshed every 100 ms tick).
//!
//! Three tiers, from the common case to the worst case:
//!
//! * `on_tick_unchanged_profile` — no request completed since the last
//!   build: the version gate short-circuits the whole rebuild, so a tick is
//!   the version compare plus one frequency decision (~ns, vs a full
//!   ~ms-class rebuild before gating).
//! * `on_tick_one_new_sample` — one completion recorded, then the tick: the
//!   incremental profiler updates its bucket counts in O(1) and the
//!   persistent `TableBuilder` performs a full warm rebuild with cached FFT
//!   plans and zero allocations. The acceptance bar is ≥ 20% under the
//!   pre-builder `table_rebuild/spectral_8x16_128_buckets` median.
//! * `cold_build_8x16_128` — a throwaway builder from nothing (plan
//!   construction, buffer growth): what a freshly started controller pays
//!   exactly once.
//!
//! Results merge into `BENCH_controller.json` so the trajectory records the
//! gating/builder win.

use criterion::{criterion_group, criterion_main, Criterion};

use rubik::core::OnlineProfiler;
use rubik::stats::DeterministicRng;
use rubik::{DvfsConfig, DvfsPolicy, RubikConfig, RubikController, TargetTailTables};
use rubik_sim::{InServiceView, QueuedView, RequestRecord, ServerState};

const BENCH_JSON: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_controller.json");

fn busy_state(now: f64, dvfs: &DvfsConfig) -> ServerState {
    ServerState {
        now,
        current_freq: dvfs.min(),
        target_freq: dvfs.min(),
        in_service: Some(InServiceView {
            id: 0,
            arrival: now - 1e-4,
            elapsed_compute_cycles: 3e5,
            elapsed_membound_time: 40e-6,
            oracle_compute_cycles: 6e5,
            oracle_membound_time: 80e-6,
            class: 0,
        }),
        queued: (1..6)
            .map(|i| QueuedView {
                id: i,
                arrival: now - 5e-5,
                oracle_compute_cycles: 6e5,
                oracle_membound_time: 80e-6,
                class: 0,
            })
            .collect(),
    }
}

fn warm_controller() -> (RubikController, DvfsConfig) {
    let dvfs = DvfsConfig::haswell_like();
    let mut rubik = RubikController::new(RubikConfig::new(1e-3), dvfs.clone());
    let mut rng = DeterministicRng::new(2);
    rubik.seed_profile((0..4096).map(|_| (rng.lognormal(6e5, 0.3), rng.lognormal(80e-6, 0.3))));
    (rubik, dvfs)
}

fn bench_rebuild_amortized(c: &mut Criterion) {
    let mut group = c.benchmark_group("rebuild_amortized");

    // Tier 1: version-gated no-op tick.
    {
        let (mut rubik, dvfs) = warm_controller();
        let state = busy_state(0.5, &dvfs);
        rubik.on_tick(&state); // settle: first tick performs nothing new
        group.bench_function("on_tick_unchanged_profile", |b| {
            b.iter(|| rubik.on_tick(&state))
        });
        assert!(rubik.stats().table_rebuilds_skipped > 0);
    }

    // Tier 2: one new sample per tick — the warm incremental rebuild.
    {
        let (mut rubik, dvfs) = warm_controller();
        let state = busy_state(0.5, &dvfs);
        let mut rng = DeterministicRng::new(3);
        group.bench_function("on_tick_one_new_sample", |b| {
            b.iter(|| {
                let record = RequestRecord {
                    id: 1,
                    arrival: 0.4999,
                    start: 0.49995,
                    completion: 0.5,
                    compute_cycles: rng.lognormal(6e5, 0.3),
                    membound_time: rng.lognormal(80e-6, 0.3),
                    queue_len_at_arrival: 1,
                    class: 0,
                };
                rubik.on_completion(&state, &record);
                rubik.on_tick(&state)
            })
        });
        assert!(rubik.stats().table_rebuilds_performed > 1);
    }

    // Tier 3: cold build through the public wrapper (throwaway builder).
    {
        let mut profiler = OnlineProfiler::new(4096);
        let mut rng = DeterministicRng::new(1);
        for _ in 0..4096 {
            profiler.record(rng.lognormal(6e5, 0.3), rng.lognormal(80e-6, 0.3));
        }
        let compute = profiler.compute_histogram().unwrap();
        let membound = profiler.membound_histogram().unwrap();
        group.bench_function("cold_build_8x16_128", |b| {
            b.iter(|| TargetTailTables::build(&compute, &membound, 0.95))
        });
    }

    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20).output_json(BENCH_JSON);
    targets = bench_rebuild_amortized
}
criterion_main!(benches);
