//! A Pegasus-style pure feedback controller.
//!
//! Pegasus (Lo et al., ISCA 2014) measures tail latency over a coarse window
//! and nudges a single CPU-wide power/frequency setting up or down every few
//! seconds. The paper argues (Sec. 2.2) that such controllers adapt to
//! diurnal variation but not to sub-millisecond variability, and uses
//! StaticOracle as an upper bound on what they can save. We include a
//! concrete Pegasus-style policy so that the responsiveness experiments
//! (Fig. 1b, Fig. 10) can also show a real feedback-only controller, and so
//! that the claim "feedback alone reacts slowly" can be reproduced directly.

use rubik_sim::{DvfsConfig, DvfsPolicy, Freq, PolicyDecision, RequestRecord, ServerState};
use rubik_stats::RollingTailTracker;
use serde::{Deserialize, Serialize};

/// Configuration of the Pegasus-style controller.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PegasusConfig {
    /// Tail-latency bound in seconds.
    pub latency_bound: f64,
    /// Tail percentile (0.95).
    pub quantile: f64,
    /// Measurement window in seconds (Pegasus uses seconds-scale windows).
    pub window: f64,
    /// How often the frequency is adjusted, in seconds.
    pub adjustment_interval: f64,
    /// Guard band: the controller targets `guard_band × latency_bound`
    /// (feedback controllers must leave margin; Sec. 5.2).
    pub guard_band: f64,
}

impl PegasusConfig {
    /// Defaults matching the paper's description: 1 s windows, adjustments
    /// every second, a 10% guard band.
    ///
    /// # Panics
    ///
    /// Panics if `latency_bound <= 0`.
    pub fn new(latency_bound: f64) -> Self {
        assert!(latency_bound > 0.0, "latency bound must be positive");
        Self {
            latency_bound,
            quantile: 0.95,
            window: 1.0,
            adjustment_interval: 1.0,
            guard_band: 0.9,
        }
    }
}

/// A feedback-only DVFS controller: one frequency for all requests, stepped
/// up quickly on violations and down slowly when there is headroom.
#[derive(Debug, Clone)]
pub struct PegasusPolicy {
    config: PegasusConfig,
    dvfs: DvfsConfig,
    current: Freq,
    tracker: RollingTailTracker,
    last_adjustment: f64,
}

impl PegasusPolicy {
    /// Creates the controller, starting at the nominal frequency.
    pub fn new(config: PegasusConfig, dvfs: DvfsConfig) -> Self {
        let tracker = RollingTailTracker::new(config.window, config.quantile);
        Self {
            current: dvfs.nominal(),
            tracker,
            last_adjustment: 0.0,
            config,
            dvfs,
        }
    }

    /// The frequency the controller currently commands.
    pub fn current_freq(&self) -> Freq {
        self.current
    }

    /// The tail-latency bound currently in force.
    pub fn latency_bound(&self) -> f64 {
        self.config.latency_bound
    }

    /// Retargets the tail-latency bound mid-run (fleet-level retargeting).
    /// The next adjustment compares the measured tail against the new bound.
    ///
    /// # Panics
    ///
    /// Panics if `bound <= 0`.
    pub fn set_latency_bound(&mut self, bound: f64) {
        assert!(bound > 0.0, "latency bound must be positive");
        self.config.latency_bound = bound;
    }

    fn adjust(&mut self, now: f64) {
        if now - self.last_adjustment < self.config.adjustment_interval {
            return;
        }
        self.last_adjustment = now;
        self.tracker.advance(now);
        let Some(tail) = self.tracker.tail() else {
            return;
        };
        let target = self.config.guard_band * self.config.latency_bound;
        let step = self.dvfs.step_mhz();
        if tail > self.config.latency_bound {
            // Violation: jump up aggressively (two steps).
            let mhz = (self.current.mhz() + 2 * step).min(self.dvfs.max().mhz());
            self.current = Freq::from_mhz(mhz);
        } else if tail > target {
            // Near the bound: hold.
        } else {
            // Headroom: creep down one step.
            let mhz = self
                .current
                .mhz()
                .saturating_sub(step)
                .max(self.dvfs.min().mhz());
            self.current = Freq::from_mhz(mhz);
        }
    }
}

impl DvfsPolicy for PegasusPolicy {
    fn name(&self) -> &str {
        "pegasus-feedback"
    }

    fn on_arrival(&mut self, _state: &ServerState) -> PolicyDecision {
        PolicyDecision::SetFrequency(self.current)
    }

    fn on_completion(&mut self, _state: &ServerState, record: &RequestRecord) -> PolicyDecision {
        self.tracker.record(record.completion, record.latency());
        PolicyDecision::SetFrequency(self.current)
    }

    fn on_tick(&mut self, state: &ServerState) -> PolicyDecision {
        self.adjust(state.now);
        PolicyDecision::SetFrequency(self.current)
    }

    fn idle_frequency(&self) -> Option<Freq> {
        Some(self.current)
    }

    fn latency_bound(&self) -> Option<f64> {
        Some(self.config.latency_bound)
    }

    fn set_latency_bound(&mut self, bound: f64) -> bool {
        PegasusPolicy::set_latency_bound(self, bound);
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rubik_sim::{Server, SimConfig};
    use rubik_workloads::{AppProfile, LoadProfile, WorkloadGenerator};

    #[test]
    fn starts_at_nominal() {
        let p = PegasusPolicy::new(PegasusConfig::new(1e-3), DvfsConfig::haswell_like());
        assert_eq!(p.current_freq(), Freq::from_mhz(2400));
    }

    #[test]
    fn steps_down_under_light_load() {
        let profile = AppProfile::masstree();
        let bound = 5.0 * profile.mean_service_time();
        let mut g = WorkloadGenerator::new(profile, 1);
        // 10 seconds of light load gives the controller time to creep down.
        let trace = g.profile_trace(&LoadProfile::Constant {
            load: 0.15,
            duration: 10.0,
        });
        let mut pegasus = PegasusPolicy::new(PegasusConfig::new(bound), DvfsConfig::haswell_like());
        let _ = Server::new(SimConfig::default()).run(&trace, &mut pegasus);
        assert!(pegasus.current_freq() < Freq::from_mhz(2400));
    }

    #[test]
    fn reacts_to_load_increase_but_only_after_its_window() {
        let profile = AppProfile::masstree();
        let bound = 2.0 * profile.mean_service_time();
        let mut g = WorkloadGenerator::new(profile, 2);
        let trace = g.profile_trace(&LoadProfile::Steps(vec![(0.2, 3.0), (0.85, 3.0)]));
        let mut pegasus = PegasusPolicy::new(PegasusConfig::new(bound), DvfsConfig::haswell_like());
        let result = Server::new(SimConfig::default()).run(&trace, &mut pegasus);
        // It ends above where it was during the light phase (it reacted), but
        // the tail during the transition suffers relative to the bound —
        // exactly the slow-reaction behaviour the paper describes.
        assert!(
            pegasus.current_freq() >= Freq::from_mhz(2400) || {
                let rolled = result.rolling_tail(0.2, 0.95);
                rolled.iter().any(|&(t, tail)| t > 3.0 && tail > bound)
            }
        );
    }

    #[test]
    fn adjustments_respect_the_interval() {
        let mut p = PegasusPolicy::new(PegasusConfig::new(1e-3), DvfsConfig::haswell_like());
        // Provide plenty of headroom samples inside the measurement window
        // that ends at t = 1.5.
        for i in 0..100 {
            p.tracker.record(1.0 + i as f64 * 1e-3, 1e-5);
        }
        p.adjust(0.5); // Before the first interval elapses: no change.
        assert_eq!(p.current_freq(), Freq::from_mhz(2400));
        p.adjust(1.5);
        assert_eq!(p.current_freq(), Freq::from_mhz(2200));
        // Immediately after, another call does nothing.
        p.adjust(1.6);
        assert_eq!(p.current_freq(), Freq::from_mhz(2200));
    }

    #[test]
    fn retargeting_the_bound_redirects_the_feedback_loop() {
        use rubik_sim::DvfsPolicy;
        let mut p = PegasusPolicy::new(PegasusConfig::new(1e-3), DvfsConfig::haswell_like());
        assert_eq!(DvfsPolicy::latency_bound(&p), Some(1e-3));
        // Tail sits comfortably under the original bound...
        for i in 0..100 {
            p.tracker.record(1.0 + i as f64 * 1e-3, 5e-4);
        }
        // ...but a fleet retarget tightens it below the measured tail, so the
        // next adjustment steps *up* instead of creeping down.
        assert!(DvfsPolicy::set_latency_bound(&mut p, 2e-4));
        assert_eq!(p.latency_bound(), 2e-4);
        p.adjust(1.5);
        assert_eq!(p.current_freq(), Freq::from_mhz(2800));
    }

    #[test]
    fn violations_step_frequency_up_fast() {
        let mut p = PegasusPolicy::new(PegasusConfig::new(1e-3), DvfsConfig::haswell_like());
        for i in 0..100 {
            p.tracker.record(10.0 + i as f64 * 1e-3, 5e-3); // way over bound
        }
        p.adjust(11.0);
        assert_eq!(p.current_freq(), Freq::from_mhz(2800));
    }
}
