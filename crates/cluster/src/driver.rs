//! The cluster driver: N `ServerSim`s multiplexed through one event loop.
//!
//! Every server is an independent open-loop simulation
//! ([`rubik_sim::ServerSim`]); the driver owns a binary heap of
//! `(next event time, server)` entries and always advances the globally
//! earliest event, so thousands of servers run in one process with no
//! threads and no per-server clocks to reconcile. Arrivals from the global
//! request stream are routed by a [`Router`] and offered to the chosen
//! server, whose own engine then sequences the arrival against its pending
//! completions, transitions, and ticks.
//!
//! # Event ordering and determinism
//!
//! The heap orders events by `(time, server index)`, and every routing
//! decision observes the fleet *after* all server events strictly before
//! the arrival instant have been processed (events at exactly the arrival
//! instant are sequenced by the destination server's own round order, which
//! is what makes a 1-server cluster bitwise-identical to
//! [`rubik_sim::Server::run`]). Entries are stamped and lazily invalidated:
//! whenever a server is stepped or offered work, its stamp advances and a
//! fresh entry is pushed, so stale heap entries are skipped on pop. The
//! whole loop is sequential and deterministic — fleet-scale parallelism
//! comes from sweeping many cluster cells on `rubik-sweep`, not from
//! threading inside one cluster.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use rubik_load::{ArrivalSource, TraceSource};
use rubik_power::CorePowerModel;
use rubik_sim::{DvfsPolicy, RequestSpec, RunResult, ServerSim, SimConfig, SimEvent, Trace};

use crate::fault::{FaultLayer, FaultPlan, HedgeResolution, OpKind, RequestPolicy};
use crate::fleet::{EpochMeter, FleetCommand, FleetController, FleetSpec, ServerPowerView};
use crate::migrate::{Migration, Migrator};
use crate::outcome::ClusterOutcome;
use crate::router::{Router, ServerHealth, ServerView};
use rubik_telemetry::{
    EpochSample, RequestEvent, RequestEventKind, ServerEvent, ServerEventKind, ServerSample,
    Telemetry, TraceLog,
};

/// Why a [`Cluster`] could not be built.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ClusterError {
    /// The fleet has zero servers; a cluster needs at least one.
    EmptyFleet,
    /// The attached [`FaultPlan`] is inconsistent with the fleet (server
    /// out of range, non-finite time, empty straggle window, double crash,
    /// recovery of a healthy server, …). The message says which event.
    InvalidFaultPlan(String),
    /// The offered per-server load is not positive and finite, so no
    /// arrival process can be constructed from it.
    InvalidLoad,
}

impl std::fmt::Display for ClusterError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClusterError::EmptyFleet => write!(f, "a cluster needs at least one server"),
            ClusterError::InvalidFaultPlan(why) => write!(f, "invalid fault plan: {why}"),
            ClusterError::InvalidLoad => write!(f, "load must be positive and finite"),
        }
    }
}

impl std::error::Error for ClusterError {}

/// A heap entry: the next event of one server, stamped for lazy
/// invalidation.
#[derive(Debug, Clone, Copy)]
struct HeapEntry {
    time: f64,
    server: usize,
    stamp: u64,
}

impl HeapEntry {
    fn key(&self) -> (f64, usize, u64) {
        (self.time, self.server, self.stamp)
    }
}

impl PartialEq for HeapEntry {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == std::cmp::Ordering::Equal
    }
}

impl Eq for HeapEntry {}

impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        let (t0, s0, v0) = self.key();
        let (t1, s1, v1) = other.key();
        t0.total_cmp(&t1).then(s0.cmp(&s1)).then(v0.cmp(&v1))
    }
}

impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// A fleet of simulated servers behind a load balancer.
///
/// Built with one [`DvfsPolicy`] instance per server (Rubik per server, in
/// the paper's setting) and a [`Router`]; consumed by [`Cluster::run`],
/// which drives the global arrival stream through the fleet and aggregates
/// a [`ClusterOutcome`].
pub struct Cluster<P: DvfsPolicy = Box<dyn DvfsPolicy>> {
    servers: Vec<ServerSim<P>>,
    router: Box<dyn Router>,
    power: CorePowerModel,
    quantile: f64,
    /// Per-server capacity weight (1.0 everywhere for homogeneous fleets).
    capacities: Vec<f64>,
    /// Per-server core-class index (0 everywhere for homogeneous fleets).
    classes: Vec<u32>,
    /// Optional fleet-level power manager, run on its epoch.
    fleet: Option<Box<dyn FleetController>>,
    /// Optional queue rebalancer, run on its own interval.
    migrator: Option<Box<dyn Migrator>>,
    /// Optional scripted fault schedule (validated against the fleet size).
    faults: Option<FaultPlan>,
    /// Optional client-side request lifecycle: deadlines, timeouts, retries.
    request_policy: Option<RequestPolicy>,
    /// Instrumentation handle; disabled (and bitwise-invisible) by default.
    telemetry: Telemetry,
}

impl<P: DvfsPolicy> std::fmt::Debug for Cluster<P> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Cluster")
            .field("servers", &self.servers.len())
            .field("router", &self.router.name())
            .field("quantile", &self.quantile)
            .field("fleet", &self.fleet.as_ref().map(|f| f.name()))
            .field("migrator", &self.migrator.as_ref().map(|m| m.name()))
            .field("telemetry", &self.telemetry.is_enabled())
            .finish()
    }
}

impl<P: DvfsPolicy> Cluster<P> {
    /// Creates a fleet of `servers` identical-hardware servers. `policy` is
    /// called once per server index to build that server's DVFS controller —
    /// per-server instances, never shared.
    ///
    /// # Panics
    ///
    /// Panics if `servers == 0`.
    pub fn new<F>(config: SimConfig, servers: usize, router: Box<dyn Router>, mut policy: F) -> Self
    where
        F: FnMut(usize) -> P,
    {
        Self::from_spec(
            &FleetSpec::homogeneous(config, servers),
            router,
            |i, config| {
                let _ = config;
                policy(i)
            },
        )
    }

    /// Creates a possibly heterogeneous fleet from a [`FleetSpec`]: each
    /// server gets its class's [`SimConfig`], and the spec's capacity
    /// weights feed capacity-aware routing
    /// ([`PowerAware`](crate::PowerAware)) and fleet-budget apportioning
    /// ([`PegasusFleet`](crate::PegasusFleet)). `policy` is called once per
    /// server with its index and its class's configuration.
    ///
    /// # Panics
    ///
    /// Panics if the spec is empty.
    pub fn from_spec<F>(spec: &FleetSpec, router: Box<dyn Router>, mut policy: F) -> Self
    where
        F: FnMut(usize, &SimConfig) -> P,
    {
        assert!(!spec.is_empty(), "a cluster needs at least one server");
        let n = spec.len();
        let servers = (0..n)
            .map(|i| {
                let config = spec.config_of(i);
                ServerSim::new(config.clone(), policy(i, config))
            })
            .collect();
        Self {
            servers,
            router,
            power: CorePowerModel::haswell_like(),
            quantile: 0.95,
            capacities: (0..n).map(|i| spec.capacity_of(i)).collect(),
            classes: (0..n).map(|i| spec.class_index_of(i)).collect(),
            fleet: None,
            migrator: None,
            faults: None,
            request_policy: None,
            telemetry: Telemetry::disabled(),
        }
    }

    /// Fallible [`Cluster::new`]: returns [`ClusterError::EmptyFleet`]
    /// instead of panicking on a zero-server fleet.
    pub fn try_new<F>(
        config: SimConfig,
        servers: usize,
        router: Box<dyn Router>,
        policy: F,
    ) -> Result<Self, ClusterError>
    where
        F: FnMut(usize) -> P,
    {
        if servers == 0 {
            return Err(ClusterError::EmptyFleet);
        }
        Ok(Self::new(config, servers, router, policy))
    }

    /// Fallible [`Cluster::from_spec`]: returns
    /// [`ClusterError::EmptyFleet`] instead of panicking on an empty spec.
    pub fn try_from_spec<F>(
        spec: &FleetSpec,
        router: Box<dyn Router>,
        policy: F,
    ) -> Result<Self, ClusterError>
    where
        F: FnMut(usize, &SimConfig) -> P,
    {
        if spec.is_empty() {
            return Err(ClusterError::EmptyFleet);
        }
        Ok(Self::from_spec(spec, router, policy))
    }

    /// Attaches a fleet-level power manager, run on its epoch (initially at
    /// `t = 0`, before any event). See
    /// [`PegasusFleet`](crate::PegasusFleet).
    pub fn with_fleet_controller(mut self, fleet: Box<dyn FleetController>) -> Self {
        assert!(fleet.epoch() > 0.0, "fleet epoch must be positive");
        self.fleet = Some(fleet);
        self
    }

    /// Attaches a queue rebalancer, run on its own periodic interval. See
    /// [`ThresholdMigrator`](crate::ThresholdMigrator).
    pub fn with_migrator(mut self, migrator: Box<dyn Migrator>) -> Self {
        assert!(
            migrator.interval() > 0.0,
            "migration interval must be positive"
        );
        self.migrator = Some(migrator);
        self
    }

    /// Attaches a scripted fault schedule, applied deterministically
    /// between simulation events. An empty plan is **bit-neutral**: the run
    /// produces exactly the bytes it would without the plan.
    ///
    /// # Panics
    ///
    /// Panics if the plan fails [`FaultPlan::validate`] against this fleet;
    /// use [`Cluster::try_with_fault_plan`] for the fallible form.
    pub fn with_fault_plan(self, plan: FaultPlan) -> Self {
        match self.try_with_fault_plan(plan) {
            Ok(cluster) => cluster,
            Err(e) => panic!("{e}"),
        }
    }

    /// Fallible [`Cluster::with_fault_plan`].
    pub fn try_with_fault_plan(mut self, plan: FaultPlan) -> Result<Self, ClusterError> {
        plan.validate(self.servers.len())?;
        self.faults = Some(plan);
        Ok(self)
    }

    /// Attaches the client-side request lifecycle: per-request deadlines,
    /// per-attempt timeouts, retries with capped exponential backoff and
    /// deterministic jitter, and crash salvage/drain behaviour. The default
    /// policy is inert and bit-neutral.
    pub fn with_request_policy(mut self, policy: RequestPolicy) -> Self {
        self.request_policy = Some(policy);
        self
    }

    /// Attaches instrumentation (see [`rubik_telemetry`]). The default,
    /// [`Telemetry::disabled`], is **bitwise-invisible**: the run produces
    /// exactly the bytes it would without telemetry and performs zero
    /// steady-state allocations. [`Telemetry::recording`] captures
    /// per-request lifecycle events, server fault windows, and a per-epoch
    /// fleet time series at the same deterministic boundary instants the
    /// driver already sequences — recording telemetry leaves the simulation
    /// outputs bit-identical too; it only *adds* the log, retrieved with
    /// [`Cluster::run_traced`].
    pub fn with_telemetry(mut self, telemetry: Telemetry) -> Self {
        self.telemetry = telemetry;
        self
    }

    /// Overrides the core power model used for fleet energy accounting.
    ///
    /// This does **not** reach into the router: a
    /// [`PowerAware`](crate::PowerAware) router carries its own scoring
    /// model, so
    /// construct it from the same model passed here or its routing
    /// objective will diverge from the reported fleet energy.
    pub fn with_power(mut self, power: CorePowerModel) -> Self {
        self.power = power;
        self
    }

    /// Overrides the tail quantile (default 0.95).
    pub fn with_quantile(mut self, quantile: f64) -> Self {
        assert!(
            quantile > 0.0 && quantile < 1.0,
            "quantile must be in (0, 1)"
        );
        self.quantile = quantile;
        self
    }

    /// Number of servers in the fleet.
    pub fn len(&self) -> usize {
        self.servers.len()
    }

    /// Whether the fleet is empty (never true — see [`Cluster::new`]).
    pub fn is_empty(&self) -> bool {
        self.servers.is_empty()
    }

    /// The fleet's router.
    pub fn router(&self) -> &dyn Router {
        self.router.as_ref()
    }

    /// Serves the global arrival stream `trace` through the fleet and
    /// returns the aggregated outcome.
    ///
    /// The trace is the *fleet's* arrival process (e.g. from
    /// [`crate::fleet_trace`]); each request is routed on arrival and
    /// offered to one server. Requests must be time-ordered, which
    /// [`Trace`] guarantees.
    pub fn run(self, trace: &Trace) -> ClusterOutcome {
        self.run_with_results(trace).0
    }

    /// Serves a pull-based arrival stream through the fleet and returns
    /// the aggregated outcome.
    ///
    /// Arrivals are pulled from `source` one at a time, as the event loop
    /// reaches them: the stream is never materialized, so resident memory
    /// scales with in-flight work (plus the per-request completion records
    /// every run keeps for outcome aggregation), not with the length of
    /// the arrival stream. `run_streamed(TraceSource::new(&trace))` is
    /// bitwise-identical to `run(&trace)` — the batch path is itself built
    /// on this one.
    ///
    /// # Panics
    ///
    /// Panics if the source yields arrivals out of time order (a violation
    /// of the [`ArrivalSource`] contract).
    pub fn run_streamed<S: ArrivalSource>(self, source: S) -> ClusterOutcome {
        self.run_streamed_with_results(source).0
    }

    /// Like [`Cluster::run_streamed`], but also returns each server's raw
    /// [`RunResult`], mirroring [`Cluster::run_with_results`].
    pub fn run_streamed_with_results<S: ArrivalSource>(
        self,
        mut source: S,
    ) -> (ClusterOutcome, Vec<RunResult>) {
        let (outcome, results, _) = self.run_core(&mut source);
        (outcome, results)
    }

    /// Like [`Cluster::run_streamed_with_results`], but also returns the
    /// assembled [`TraceLog`], mirroring [`Cluster::run_traced`]: if no
    /// recording telemetry was attached, [`Telemetry::recording`] is
    /// enabled with its default sampling epoch.
    pub fn run_streamed_traced<S: ArrivalSource>(
        mut self,
        mut source: S,
    ) -> (ClusterOutcome, Vec<RunResult>, TraceLog) {
        if !self.telemetry.is_enabled() {
            self.telemetry = Telemetry::recording();
        }
        let (outcome, results, log) = self.run_core(&mut source);
        (outcome, results, log.expect("telemetry is enabled"))
    }

    /// Like [`Cluster::run`], but also returns each server's raw
    /// [`RunResult`] (used by the equivalence suites and for per-server
    /// timelines).
    ///
    /// # Hook ordering
    ///
    /// The attached [`Migrator`] and [`FleetController`] run on their own
    /// periodic clocks, interleaved with the event stream: at a boundary
    /// time `t`, every fleet event strictly before `t` has been processed,
    /// the migrator (if both fire at `t`) rebalances first, and the fleet
    /// controller then observes the post-rebalance queues. Telemetry
    /// sampling (when recording) is its own boundary and runs *last* at
    /// equal instants, observing the post-hook fleet. Boundaries keep
    /// firing through the post-arrival drain so a trailing backlog is still
    /// rebalanced and capped. A cluster without hooks takes the exact code
    /// path (and produces the exact bits) it did before hooks existed.
    pub fn run_with_results(self, trace: &Trace) -> (ClusterOutcome, Vec<RunResult>) {
        let (outcome, results, _) = self.run_core(&mut TraceSource::new(trace));
        (outcome, results)
    }

    /// Like [`Cluster::run_with_results`], but also returns the assembled
    /// [`TraceLog`]. If no recording telemetry was attached with
    /// [`Cluster::with_telemetry`], this enables [`Telemetry::recording`]
    /// with its default sampling epoch — recording never changes the
    /// simulated outcome, only observes it.
    pub fn run_traced(mut self, trace: &Trace) -> (ClusterOutcome, Vec<RunResult>, TraceLog) {
        if !self.telemetry.is_enabled() {
            self.telemetry = Telemetry::recording();
        }
        let (outcome, results, log) = self.run_core(&mut TraceSource::new(trace));
        (outcome, results, log.expect("telemetry is enabled"))
    }

    fn run_core<S: ArrivalSource>(
        mut self,
        source: &mut S,
    ) -> (ClusterOutcome, Vec<RunResult>, Option<TraceLog>) {
        let n = self.servers.len();
        let mut loop_state = EventLoop {
            heap: BinaryHeap::with_capacity(2 * n),
            stamps: vec![0; n],
            views: Vec::with_capacity(n),
            capacities: std::mem::take(&mut self.capacities),
            classes: std::mem::take(&mut self.classes),
            healths: vec![ServerHealth::Up; n],
        };
        // The fault/lifecycle layer exists only when something was attached;
        // without it every drain takes the pre-existing unwatched path. (An
        // *empty* plan builds a layer whose next boundary is infinite — the
        // same code path with a no-op observer, which is still bit-neutral.)
        let mut layer: Option<FaultLayer> =
            if self.faults.is_some() || self.request_policy.is_some() {
                Some(FaultLayer::new(
                    self.faults.as_ref(),
                    self.request_policy.unwrap_or_default(),
                    n,
                ))
            } else {
                None
            };
        // One view per server, maintained incrementally: only a stepped or
        // offered server's view changes, so routing stays O(fleet) in reads
        // but O(events) — not O(arrivals × fleet) — in writes.
        for i in 0..n {
            loop_state.views.push(loop_state.view_of(&self.servers, i));
            if let Some(time) = self.servers[i].next_event_time() {
                loop_state.heap.push(Reverse(HeapEntry {
                    time,
                    server: i,
                    stamp: loop_state.stamps[i],
                }));
            }
        }

        let mut fleet = self.fleet.take();
        let mut migrator = self.migrator.take();
        let epoch = fleet
            .as_deref()
            .map_or(f64::INFINITY, FleetController::epoch);
        let rebalance = migrator
            .as_deref()
            .map_or(f64::INFINITY, Migrator::interval);
        let mut hooks = Hooks {
            meter: EpochMeter::new(n),
            power: self.power,
            powers: Vec::with_capacity(n),
            commands: Vec::new(),
            moves: Vec::new(),
            batch: Vec::new(),
            // The original per-policy latency objectives: `ScaleBound`
            // commands rescale relative to these, never compounding.
            base_bounds: self
                .servers
                .iter()
                .map(|s| s.policy().latency_bound())
                .collect(),
            migrated: 0,
        };

        // Initial apportioning before any event, so a finite budget is in
        // force from the very first request.
        if let Some(ctl) = fleet.as_deref_mut() {
            hooks.run_epoch(ctl, 0.0, 0.0, &mut self.servers, &mut loop_state);
        }
        let mut next_epoch = epoch;
        let mut next_rebalance = rebalance;

        // Telemetry sampling shares the boundary mechanism. Disabled
        // telemetry keeps `next_sample` infinite and allocates nothing —
        // every boundary below computes exactly as it did without the
        // `.min(next_sample)` term. Enabled sampling only *partitions* the
        // drains at sample instants (events are still processed in the same
        // order), so even a recording run leaves the simulation bit-exact.
        let mut tele = std::mem::take(&mut self.telemetry);
        let sample_epoch = tele.sample_epoch().unwrap_or(f64::INFINITY);
        let mut tele_meter = tele.is_enabled().then(|| EpochMeter::new(n));
        let mut tele_powers: Vec<f64> = Vec::new();
        let mut next_sample = sample_epoch;

        // Pull arrivals lazily: the stream is consumed one request at a
        // time, so the driver's resident memory tracks in-flight work, not
        // stream length. `offered` replaces the batch path's `trace.len()`
        // in fault-layer conservation accounting.
        let mut offered = 0usize;
        let mut last_arrival = f64::NEG_INFINITY;
        while let Some(request) = source.next_arrival() {
            assert!(
                request.arrival >= last_arrival,
                "arrival source must be time-ordered: {} after {}",
                request.arrival,
                last_arrival
            );
            last_arrival = request.arrival;
            // Run any hook boundaries at or before the arrival instant
            // (boundary actions happen *between* events; an arrival at
            // exactly the boundary is routed after the hooks ran). Fault
            // work — scripted ops, retry deliveries, attempt timeouts —
            // shares the boundary mechanism and runs first at equal
            // instants, so migration and capping observe the post-fault
            // fleet.
            loop {
                let fault_b = layer
                    .as_ref()
                    .map_or(f64::INFINITY, FaultLayer::next_boundary);
                let boundary = next_rebalance.min(next_epoch).min(fault_b).min(next_sample);
                if boundary > request.arrival {
                    break;
                }
                loop_state.drain_before(&mut self.servers, boundary, layer.as_mut(), &mut tele);
                if fault_b <= boundary {
                    let l = layer.as_mut().expect("fault boundary implies layer");
                    run_faults(
                        l,
                        &mut tele,
                        boundary,
                        self.router.as_mut(),
                        &mut self.servers,
                        &mut loop_state,
                    );
                }
                if next_rebalance == boundary {
                    let m = migrator.as_deref_mut().expect("rebalance implies migrator");
                    hooks.run_migration(m, &mut tele, boundary, &mut self.servers, &mut loop_state);
                    next_rebalance += rebalance;
                }
                if next_epoch == boundary {
                    let ctl = fleet.as_deref_mut().expect("epoch implies controller");
                    hooks.run_epoch(ctl, boundary, epoch, &mut self.servers, &mut loop_state);
                    next_epoch += epoch;
                }
                if next_sample == boundary {
                    let meter = tele_meter.as_mut().expect("sampling implies telemetry");
                    sample_fleet(
                        &mut tele,
                        meter,
                        &mut tele_powers,
                        boundary,
                        &self.servers,
                        &loop_state,
                        layer.as_ref(),
                        &hooks.power,
                    );
                    next_sample += sample_epoch;
                }
            }

            // Process every fleet event strictly before the arrival; events
            // at exactly the arrival instant are left for the destination
            // server's engine to order against the arrival itself.
            loop_state.drain_before(
                &mut self.servers,
                request.arrival,
                layer.as_mut(),
                &mut tele,
            );

            let target = self.router.route(&request, &loop_state.views);
            assert!(
                target < n,
                "router {} chose server {target} of a {n}-server fleet",
                self.router.name()
            );
            self.servers[target].offer(request);
            loop_state.schedule(&self.servers, target);
            if let Some(l) = layer.as_mut() {
                l.on_routed(request, target, 1, request.arrival);
            }
            tele.request_event(
                request.id,
                RequestEvent {
                    at: request.arrival,
                    kind: RequestEventKind::Routed {
                        server: target as u32,
                        attempt: 1,
                    },
                },
            );
            offered += 1;
        }

        // The stream is exhausted: no more work will ever be offered, so
        // close every server and let the remaining events drain — still
        // honouring hook boundaries while any event, retry, timeout, or
        // scripted op remains (a retried request may be delivered into a
        // closed server, and a late `Recover` must still be applied so
        // downtime closes out).
        for i in 0..n {
            self.servers[i].close();
            loop_state.schedule(&self.servers, i);
        }
        loop {
            let fault_b = layer
                .as_ref()
                .map_or(f64::INFINITY, FaultLayer::next_boundary);
            let boundary = next_rebalance.min(next_epoch).min(fault_b).min(next_sample);
            loop_state.drain_before(&mut self.servers, boundary, layer.as_mut(), &mut tele);
            if fault_b.is_infinite() && !self.servers.iter().any(|s| s.next_event_time().is_some())
            {
                break;
            }
            if fault_b <= boundary {
                let l = layer.as_mut().expect("fault boundary implies layer");
                run_faults(
                    l,
                    &mut tele,
                    boundary,
                    self.router.as_mut(),
                    &mut self.servers,
                    &mut loop_state,
                );
            }
            if next_rebalance == boundary {
                let m = migrator.as_deref_mut().expect("rebalance implies migrator");
                hooks.run_migration(m, &mut tele, boundary, &mut self.servers, &mut loop_state);
                next_rebalance += rebalance;
            }
            if next_epoch == boundary {
                let ctl = fleet.as_deref_mut().expect("epoch implies controller");
                hooks.run_epoch(ctl, boundary, epoch, &mut self.servers, &mut loop_state);
                next_epoch += epoch;
            }
            if next_sample == boundary {
                let meter = tele_meter.as_mut().expect("sampling implies telemetry");
                sample_fleet(
                    &mut tele,
                    meter,
                    &mut tele_powers,
                    boundary,
                    &self.servers,
                    &loop_state,
                    layer.as_ref(),
                    &hooks.power,
                );
                next_sample += sample_epoch;
            }
        }

        // Align every server's timeline with the fleet's end so idle/sleep
        // power is charged through the whole run: without this, a server
        // that drained early would be charged nothing while a backlogged
        // neighbour worked on, flattering imbalanced routings.
        let end = self.servers.iter().map(ServerSim::now).fold(0.0, f64::max);
        for server in &mut self.servers {
            server.coast_to(end);
        }

        // Close out the telemetry time series with the final (possibly
        // partial) window, so the run's whole span is covered.
        if let Some(meter) = tele_meter.as_mut() {
            if end > meter.last_time() {
                sample_fleet(
                    &mut tele,
                    meter,
                    &mut tele_powers,
                    end,
                    &self.servers,
                    &loop_state,
                    layer.as_ref(),
                    &hooks.power,
                );
            }
        }

        let downtimes: Vec<f64> = self.servers.iter().map(|s| s.downtime()).collect();
        let results: Vec<RunResult> = self.servers.into_iter().map(ServerSim::finish).collect();
        let mut outcome = ClusterOutcome::aggregate_classed(
            &results,
            Some(&loop_state.classes),
            &self.power,
            self.quantile,
        );
        outcome.migrated_requests = hooks.migrated;
        for (server, downtime) in outcome.per_server.iter_mut().zip(&downtimes) {
            server.downtime = *downtime;
        }
        if let Some(mut l) = layer {
            outcome.availability = l.finalize(offered, self.quantile, &results);
        }
        let log = tele.finalize(&results, end);
        (outcome, results, log)
    }
}

/// The driver's event-loop state: the stamped heap, the incrementally
/// maintained router views, and the static per-server labels the views
/// carry.
struct EventLoop {
    heap: BinaryHeap<Reverse<HeapEntry>>,
    stamps: Vec<u64>,
    views: Vec<ServerView>,
    capacities: Vec<f64>,
    classes: Vec<u32>,
    healths: Vec<ServerHealth>,
}

impl EventLoop {
    fn view_of<P: DvfsPolicy>(&self, servers: &[ServerSim<P>], i: usize) -> ServerView {
        let s = &servers[i];
        ServerView {
            index: i,
            in_flight: s.in_flight(),
            admitted: s.pending_requests(),
            queued: s.queued_len(),
            current_freq: s.current_freq(),
            target_freq: s.target_freq(),
            busy: !s.is_idle(),
            capacity: self.capacities[i],
            class: self.classes[i],
            health: self.healths[i],
        }
    }

    /// Re-registers server `i` after its state changed: refreshes its router
    /// view, advances its stamp (invalidating any entry already in the
    /// heap), and pushes its current next-event time, if any.
    fn schedule<P: DvfsPolicy>(&mut self, servers: &[ServerSim<P>], i: usize) {
        self.views[i] = self.view_of(servers, i);
        self.stamps[i] += 1;
        if let Some(time) = servers[i].next_event_time() {
            self.heap.push(Reverse(HeapEntry {
                time,
                server: i,
                stamp: self.stamps[i],
            }));
        }
    }

    /// Steps fleet events in `(time, server)` order while they lie strictly
    /// before `limit`. When a fault layer is attached, completions are
    /// reported to it so pending timeouts are retired — and a completion
    /// that resolves a hedged pair cancels the losing copy on the spot
    /// (first-completion-wins).
    fn drain_before<P: DvfsPolicy>(
        &mut self,
        servers: &mut [ServerSim<P>],
        limit: f64,
        mut layer: Option<&mut FaultLayer>,
        tele: &mut Telemetry,
    ) {
        while let Some(&Reverse(entry)) = self.heap.peek() {
            if entry.time >= limit {
                break;
            }
            self.heap.pop();
            if entry.stamp != self.stamps[entry.server] {
                continue; // stale: the server was stepped or offered work since
            }
            let stepped = servers[entry.server].step();
            debug_assert!(stepped.is_some(), "a scheduled event must fire");
            if let (Some(SimEvent::Completion(rec)), Some(l)) = (&stepped, layer.as_deref_mut()) {
                if let Some(res) = l.on_completion(rec.id, entry.server, rec.latency()) {
                    resolve_hedge(
                        servers,
                        self,
                        tele,
                        rec.id,
                        rec.completion,
                        entry.server,
                        res,
                    );
                }
            }
            self.schedule(servers, entry.server);
        }
    }
}

/// Cancels the losing copy of a resolved hedged pair after the other copy
/// completed at `at` on `winner`. The layer's `loser` server is a hint — a
/// migrator may have moved the copy since it was tracked — so a miss falls
/// back to a fleet-wide search. Cancellation is safe here because every
/// fleet event strictly before `at` has already been processed: the losing
/// copy's next event (if any) cannot lie in the cancelled past.
fn resolve_hedge<P: DvfsPolicy>(
    servers: &mut [ServerSim<P>],
    loop_state: &mut EventLoop,
    tele: &mut Telemetry,
    id: u64,
    at: f64,
    winner: usize,
    res: HedgeResolution,
) {
    if res.hedge_won {
        tele.request_event(
            id,
            RequestEvent {
                at,
                kind: RequestEventKind::HedgeWon {
                    server: winner as u32,
                },
            },
        );
    }
    // A server that coasted past `at` (e.g. under an earlier fault
    // alignment at this same boundary) cancels at its own clock instead.
    let cancel = |servers: &mut [ServerSim<P>], j: usize| {
        servers[j].cancel(at.max(servers[j].now()), id).is_some()
    };
    let found = if cancel(servers, res.loser) {
        Some(res.loser)
    } else {
        (0..servers.len()).find(|&j| j != res.loser && cancel(servers, j))
    };
    if let Some(j) = found {
        loop_state.schedule(servers, j);
        tele.request_event(
            id,
            RequestEvent {
                at,
                kind: RequestEventKind::HedgeCancelled { server: j as u32 },
            },
        );
    }
}

/// Steps one server's events up to and including `t` (reporting completions
/// to the fault layer, resolving hedged pairs), then aligns its clock to
/// exactly `t` so a fault op applies at its scripted instant — the
/// straggler factor, stuck frequency, or failure takes effect at `t`, not
/// at the server's last event.
fn align_server_to<P: DvfsPolicy>(
    servers: &mut [ServerSim<P>],
    i: usize,
    t: f64,
    layer: &mut FaultLayer,
    tele: &mut Telemetry,
    loop_state: &mut EventLoop,
) {
    while servers[i].next_event_time().is_some_and(|te| te <= t) {
        if let Some(SimEvent::Completion(rec)) = servers[i].step() {
            if let Some(res) = layer.on_completion(rec.id, i, rec.latency()) {
                resolve_hedge(servers, loop_state, tele, rec.id, rec.completion, i, res);
            }
        }
    }
    servers[i].coast_to(t);
}

/// Applies every scripted op, retry delivery, hedge launch, and attempt
/// timeout due at `now`, in that order (ops change health, which retry and
/// hedge routing observe; hedges precede timeouts so a launch due at `now`
/// supersedes a timeout due at the same instant; timeouts run last so a
/// retry delivered at `now` cannot time out at `now`). All server mutation
/// happens here, against the same views and scheduling discipline as
/// routing — one deterministic sequence regardless of sweep threading.
fn run_faults<P: DvfsPolicy>(
    layer: &mut FaultLayer,
    tele: &mut Telemetry,
    now: f64,
    router: &mut dyn Router,
    servers: &mut [ServerSim<P>],
    loop_state: &mut EventLoop,
) {
    while let Some(op) = layer.pop_due_op(now) {
        align_server_to(servers, op.server, now, layer, tele, loop_state);
        let effective = layer.track_op(&op);
        match op.kind {
            OpKind::Crash => {
                tele.server_event(ServerEvent {
                    at: now,
                    server: op.server as u32,
                    kind: ServerEventKind::Down,
                });
                let in_flight = servers[op.server].fail(now);
                loop_state.healths[op.server] = layer.health_of(op.server);
                if let Some(spec) = in_flight {
                    if layer.copy_lost(spec.id, op.server) {
                        // One copy of a hedged pair died with the server;
                        // the twin is still live, so there is nothing to
                        // salvage or drop.
                    } else if layer.policy().salvage_in_flight {
                        layer.salvage(spec, now);
                        tele.request_event(
                            spec.id,
                            RequestEvent {
                                at: now,
                                kind: RequestEventKind::Salvaged {
                                    server: op.server as u32,
                                },
                            },
                        );
                    } else {
                        layer.drop_in_flight(spec.id);
                        tele.request_event(
                            spec.id,
                            RequestEvent {
                                at: now,
                                kind: RequestEventKind::Dropped {
                                    server: op.server as u32,
                                },
                            },
                        );
                    }
                }
                loop_state.schedule(servers, op.server);
                if layer.policy().drain_on_crash {
                    let mut stranded = Vec::new();
                    while let Some(spec) = servers[op.server].steal_queued() {
                        stranded.push(spec);
                    }
                    loop_state.schedule(servers, op.server);
                    // Stealing pops the FIFO back-to-front; re-routing in
                    // reverse preserves arrival order across the receivers.
                    for spec in stranded.into_iter().rev() {
                        let target = router.route(&spec, &loop_state.views);
                        servers[target].inject(now, spec);
                        layer.requeued(spec.id, op.server, target);
                        tele.request_event(
                            spec.id,
                            RequestEvent {
                                at: now,
                                kind: RequestEventKind::Requeued {
                                    from: op.server as u32,
                                    to: target as u32,
                                },
                            },
                        );
                        loop_state.schedule(servers, target);
                    }
                }
            }
            OpKind::Recover => {
                tele.server_event(ServerEvent {
                    at: now,
                    server: op.server as u32,
                    kind: ServerEventKind::Up,
                });
                if servers[op.server].is_down() {
                    servers[op.server].recover(now);
                }
                if servers[op.server].stuck_freq().is_some() {
                    servers[op.server].stick_freq(None);
                }
                loop_state.healths[op.server] = layer.health_of(op.server);
                loop_state.schedule(servers, op.server);
            }
            OpKind::StraggleStart { slowdown, .. } => {
                tele.server_event(ServerEvent {
                    at: now,
                    server: op.server as u32,
                    kind: ServerEventKind::StraggleStart { slowdown },
                });
                servers[op.server].set_slowdown(slowdown);
                loop_state.healths[op.server] = layer.health_of(op.server);
                loop_state.schedule(servers, op.server);
            }
            OpKind::StraggleEnd => {
                if effective {
                    servers[op.server].set_slowdown(1.0);
                    tele.server_event(ServerEvent {
                        at: now,
                        server: op.server as u32,
                        kind: ServerEventKind::StraggleEnd,
                    });
                }
                loop_state.healths[op.server] = layer.health_of(op.server);
                loop_state.schedule(servers, op.server);
            }
            OpKind::Stick { level } => {
                tele.server_event(ServerEvent {
                    at: now,
                    server: op.server as u32,
                    kind: ServerEventKind::FreqStuck {
                        mhz: level.map(|f| f.mhz()),
                    },
                });
                servers[op.server].stick_freq(level);
                loop_state.schedule(servers, op.server);
            }
        }
    }
    // Retry deliveries due now, including work salvaged from a crash at
    // this very instant. The router sees live (post-fault) views; wrap it
    // in `HealthAware` to keep retries off down or straggling servers.
    while let Some((spec, attempt)) = layer.pop_due_retry(now) {
        let target = router.route(&spec, &loop_state.views);
        servers[target].inject(now, spec);
        layer.on_routed(spec, target, attempt, now);
        tele.request_event(
            spec.id,
            RequestEvent {
                at: now,
                kind: RequestEventKind::Routed {
                    server: target as u32,
                    attempt,
                },
            },
        );
        loop_state.schedule(servers, target);
    }
    // Hedge launches due now: inject a duplicate of the still-pending
    // attempt on the shortest-queue routable server other than the one
    // already holding it (the same `(in_flight, index)` key JSQ uses).
    // With no second routable candidate the launch is skipped — hedging
    // never stacks both copies on one server or feeds a down one.
    while let Some((spec, attempt, primary)) = layer.pop_due_hedge(now) {
        let target = loop_state
            .views
            .iter()
            .filter(|v| v.index != primary && v.health.routable())
            .min_by_key(|v| (v.in_flight, v.index))
            .map(|v| v.index);
        let Some(target) = target else {
            continue;
        };
        servers[target].inject(now, spec);
        layer.hedge_launched(spec.id, target);
        tele.request_event(
            spec.id,
            RequestEvent {
                at: now,
                kind: RequestEventKind::Hedged {
                    server: target as u32,
                    attempt,
                },
            },
        );
        loop_state.schedule(servers, target);
    }
    // Attempt timeouts: pull timed-out requests off their queues and hand
    // them to the retry schedule. Work already in service is never
    // interrupted — the timeout is recorded and the attempt runs out.
    while let Some((id, attempt, server)) = layer.pop_due_timeout(now) {
        if let Some(spec) = servers[server].remove_queued(id) {
            tele.request_event(
                id,
                RequestEvent {
                    at: now,
                    kind: RequestEventKind::TimedOut {
                        server: server as u32,
                        attempt,
                    },
                },
            );
            match layer.retry_or_drop(spec, attempt, now) {
                Some(due) => tele.request_event(
                    id,
                    RequestEvent {
                        at: now,
                        kind: RequestEventKind::Backoff { until: due },
                    },
                ),
                None => tele.request_event(
                    id,
                    RequestEvent {
                        at: now,
                        kind: RequestEventKind::Dropped {
                            server: server as u32,
                        },
                    },
                ),
            }
            loop_state.schedule(servers, server);
        }
    }
}

/// Takes one telemetry sample window ending at `now`: per-server mean power
/// over the window (via a dedicated [`EpochMeter`], independent of the
/// fleet controller's), queue/in-flight/DVFS snapshots from the live router
/// views, and cumulative retry/timeout counters from the fault layer.
#[allow(clippy::too_many_arguments)]
fn sample_fleet<P: DvfsPolicy>(
    tele: &mut Telemetry,
    meter: &mut EpochMeter,
    powers: &mut Vec<f64>,
    now: f64,
    servers: &[ServerSim<P>],
    loop_state: &EventLoop,
    layer: Option<&FaultLayer>,
    power: &CorePowerModel,
) {
    let start = meter.last_time();
    meter.measure(servers, power, now, powers);
    let per_server: Vec<ServerSample> = loop_state
        .views
        .iter()
        .zip(powers.iter())
        .map(|(view, &watts)| ServerSample {
            queued: view.queued as u32,
            in_flight: view.in_flight as u32,
            freq_mhz: view.current_freq.mhz(),
            power: watts,
            down: view.health == ServerHealth::Down,
        })
        .collect();
    let (retries, timeouts) = layer.map_or((0, 0), |l| {
        (l.stats().retries as u64, l.stats().timeouts as u64)
    });
    tele.epoch_sample(EpochSample {
        start,
        end: now,
        power: powers.iter().sum(),
        queued: per_server.iter().map(|s| s.queued).sum(),
        in_flight: per_server.iter().map(|s| s.in_flight).sum(),
        completions: 0, // filled at finalize by bucketing records
        retries,
        timeouts,
        per_server,
    });
}

/// Scratch state for the migration and power-capping hooks.
struct Hooks {
    meter: EpochMeter,
    power: CorePowerModel,
    powers: Vec<f64>,
    commands: Vec<FleetCommand>,
    moves: Vec<Migration>,
    batch: Vec<RequestSpec>,
    base_bounds: Vec<Option<f64>>,
    migrated: usize,
}

impl Hooks {
    /// Runs one migration boundary: plan against the live views, then move
    /// each planned batch donor-tail → receiver, preserving arrival order
    /// within the batch.
    fn run_migration<P: DvfsPolicy>(
        &mut self,
        migrator: &mut dyn Migrator,
        tele: &mut Telemetry,
        now: f64,
        servers: &mut [ServerSim<P>],
        loop_state: &mut EventLoop,
    ) {
        self.moves.clear();
        migrator.plan(now, &loop_state.views, &mut self.moves);
        for k in 0..self.moves.len() {
            let m = self.moves[k];
            assert!(
                m.from < servers.len() && m.to < servers.len() && m.from != m.to,
                "migrator {} planned an invalid move {m:?}",
                migrator.name()
            );
            self.batch.clear();
            for _ in 0..m.count {
                match servers[m.from].steal_queued() {
                    Some(spec) => self.batch.push(spec),
                    None => break, // queue shorter than planned: move less
                }
            }
            if self.batch.is_empty() {
                continue;
            }
            self.migrated += self.batch.len();
            // Stealing pops the donor's FIFO tail back-to-front; injecting
            // in reverse restores arrival order on the receiver. Injection
            // happens at the boundary instant, advancing the receiver's
            // clock to `now` first.
            for spec in self.batch.drain(..).rev() {
                servers[m.to].inject(now, spec);
                tele.request_event(
                    spec.id,
                    RequestEvent {
                        at: now,
                        kind: RequestEventKind::Migrated {
                            from: m.from as u32,
                            to: m.to as u32,
                        },
                    },
                );
            }
            loop_state.schedule(servers, m.from);
            loop_state.schedule(servers, m.to);
        }
    }

    /// Runs one fleet-controller epoch: measure per-server power over the
    /// closing window, let the controller command, and apply the commands.
    fn run_epoch<P: DvfsPolicy>(
        &mut self,
        ctl: &mut dyn FleetController,
        now: f64,
        elapsed: f64,
        servers: &mut [ServerSim<P>],
        loop_state: &mut EventLoop,
    ) {
        if elapsed > 0.0 {
            self.meter
                .measure(servers, &self.power, now, &mut self.powers);
        } else {
            self.powers.clear();
            self.powers.resize(servers.len(), 0.0);
        }
        let power_views: Vec<ServerPowerView<'_>> = loop_state
            .views
            .iter()
            .zip(servers.iter())
            .zip(&self.powers)
            .map(|((&view, server), &measured_power)| ServerPowerView {
                view,
                dvfs: &server.config().dvfs,
                measured_power,
            })
            .collect();
        self.commands.clear();
        ctl.on_epoch(now, elapsed, &power_views, &mut self.commands);
        drop(power_views);
        for k in 0..self.commands.len() {
            match self.commands[k] {
                FleetCommand::SetCeiling { server, ceiling } => {
                    assert!(server < servers.len(), "ceiling for unknown server");
                    servers[server].retarget(ceiling);
                    // A retarget can start a V/F transition, changing the
                    // server's next event time.
                    loop_state.schedule(servers, server);
                }
                FleetCommand::ScaleBound { server, scale } => {
                    assert!(server < servers.len(), "bound scale for unknown server");
                    assert!(
                        scale > 0.0 && scale.is_finite(),
                        "bound scale must be positive and finite"
                    );
                    if let Some(base) = self.base_bounds[server] {
                        servers[server].policy_mut().set_latency_bound(base * scale);
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::router::{JoinShortestQueue, Passthrough, RoundRobin};
    use rubik_sim::{FixedFrequencyPolicy, RequestSpec};

    fn config() -> SimConfig {
        SimConfig::paper_simulated()
    }

    fn fixed(config: &SimConfig) -> impl FnMut(usize) -> FixedFrequencyPolicy + '_ {
        move |_| FixedFrequencyPolicy::new(config.dvfs.nominal())
    }

    fn burst(n: usize, gap: f64) -> Trace {
        (0..n as u64)
            .map(|i| RequestSpec::new(i, i as f64 * gap, 1.2e6, 0.0))
            .collect()
    }

    #[test]
    fn all_requests_complete_across_the_fleet() {
        let cfg = config();
        let cluster = Cluster::new(cfg.clone(), 4, Box::new(RoundRobin::new()), fixed(&cfg));
        let outcome = cluster.run(&burst(200, 1e-4));
        assert_eq!(outcome.requests, 200);
        assert_eq!(outcome.servers(), 4);
        // Round-robin spreads a uniform stream evenly.
        for s in &outcome.per_server {
            assert_eq!(s.requests, 50);
        }
        assert!(outcome.tail_latency > 0.0);
        assert!(outcome.fleet_energy > 0.0);
    }

    #[test]
    fn jsq_beats_round_robin_on_tail_under_bursts() {
        // Requests arrive in simultaneous pairs; with 2 servers, round-robin
        // sends each pair to both servers (fine), but a skewed stream shows
        // the difference. Use simultaneous triples on 2 servers: JSQ never
        // stacks 3 on one server, round-robin does every other round.
        let cfg = config();
        let trace: Trace = (0..60u64)
            .map(|i| RequestSpec::new(i, (i / 3) as f64 * 2e-3, 2.4e6, 0.0))
            .collect();
        let rr = Cluster::new(cfg.clone(), 2, Box::new(RoundRobin::new()), fixed(&cfg));
        let jsq = Cluster::new(
            cfg.clone(),
            2,
            Box::new(JoinShortestQueue::new()),
            fixed(&cfg),
        );
        let rr_out = rr.run(&trace);
        let jsq_out = jsq.run(&trace);
        assert_eq!(rr_out.requests, 60);
        assert_eq!(jsq_out.requests, 60);
        assert!(
            jsq_out.tail_latency <= rr_out.tail_latency + 1e-12,
            "JSQ tail {} vs RR tail {}",
            jsq_out.tail_latency,
            rr_out.tail_latency
        );
    }

    #[test]
    fn empty_trace_produces_empty_outcome() {
        let cfg = config();
        let cluster = Cluster::new(cfg.clone(), 3, Box::new(Passthrough), fixed(&cfg));
        let (outcome, results) = cluster.run_with_results(&Trace::default());
        assert_eq!(outcome.requests, 0);
        assert_eq!(results.len(), 3);
        for r in &results {
            assert!(r.records().is_empty());
        }
    }

    #[test]
    fn run_is_deterministic_for_a_fixed_input() {
        let cfg = config();
        let trace = burst(120, 3e-4);
        let run =
            |router: Box<dyn Router>| Cluster::new(cfg.clone(), 3, router, fixed(&cfg)).run(&trace);
        let a = run(Box::new(JoinShortestQueue::new()));
        let b = run(Box::new(JoinShortestQueue::new()));
        assert_eq!(a, b);
    }

    #[test]
    fn boxed_policies_allow_heterogeneous_fleets() {
        let cfg = config();
        let slow = cfg.dvfs.min();
        let fast = cfg.dvfs.nominal();
        let cluster = Cluster::new(
            cfg.clone(),
            2,
            Box::new(RoundRobin::new()),
            |i| -> Box<dyn DvfsPolicy> {
                Box::new(FixedFrequencyPolicy::new(if i == 0 { slow } else { fast }))
            },
        );
        let outcome = cluster.run(&burst(40, 2e-3));
        // The slow server burns less power but is slower per request.
        assert!(outcome.per_server[0].tail_latency > outcome.per_server[1].tail_latency);
        assert!(outcome.per_server[0].busy_time > outcome.per_server[1].busy_time);
    }

    #[test]
    #[should_panic(expected = "at least one server")]
    fn zero_server_cluster_panics() {
        let cfg = config();
        let _ = Cluster::new(cfg.clone(), 0, Box::new(Passthrough), fixed(&cfg));
    }
}
