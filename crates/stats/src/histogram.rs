//! Fixed-bucket discrete probability distributions.
//!
//! Rubik represents per-request service demand as 128-bucket histograms
//! (paper Sec. 4.2, "Cost"). The controller needs to:
//!
//! * build the histogram from online samples,
//! * condition it on work already performed (`P[S = c + ω | S > ω]`),
//! * convolve it with itself repeatedly to model queued requests,
//! * extract tail quantiles.

use serde::{Deserialize, Serialize};

use crate::fft;

/// A discrete probability distribution over a non-negative quantity
/// (cycles, seconds, ...), represented as equal-width buckets.
///
/// Bucket `i` covers the half-open interval
/// `[i * bucket_width, (i + 1) * bucket_width)`, and the value reported for a
/// bucket is its upper edge (a conservative choice: quantiles never
/// under-estimate the quantity, which is the safe direction for a controller
/// that must meet a latency bound).
///
/// Every histogram caches the prefix sums of its PMF at construction, so
/// [`Histogram::cdf`] is O(1) and [`Histogram::quantile`] is O(log n)
/// instead of re-summing the PMF — these run on Rubik's per-arrival decision
/// path, where the controller consults quantiles on every event.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Histogram {
    bucket_width: f64,
    /// Probability mass per bucket. Always sums to 1 (within fp error) for a
    /// non-empty histogram.
    pmf: Vec<f64>,
    /// Cached running CDF: `cdf[i]` is the total mass of buckets `0..=i`.
    cdf: Vec<f64>,
}

impl PartialEq for Histogram {
    fn eq(&self, other: &Self) -> bool {
        // The cached CDF is derived from the PMF; comparing it would be
        // redundant.
        self.bucket_width == other.bucket_width && self.pmf == other.pmf
    }
}

impl Histogram {
    /// Internal constructor: caches the running CDF for the given PMF.
    fn with_pmf(bucket_width: f64, pmf: Vec<f64>) -> Self {
        let mut h = Self {
            bucket_width,
            pmf,
            cdf: Vec::new(),
        };
        h.rebuild_cdf();
        h
    }

    /// Recomputes the cached running CDF in place, reusing its storage.
    fn rebuild_cdf(&mut self) {
        self.cdf.clear();
        self.cdf.reserve(self.pmf.len());
        let mut cum = 0.0;
        for &p in &self.pmf {
            cum += p;
            self.cdf.push(cum);
        }
    }
    /// Builds a histogram from raw samples using `buckets` equal-width
    /// buckets spanning `[0, max_sample]`.
    ///
    /// # Panics
    ///
    /// Panics if `buckets == 0` or if `samples` is empty or contains a
    /// negative or non-finite value.
    pub fn from_samples(samples: &[f64], buckets: usize) -> Self {
        assert!(buckets > 0, "histogram must have at least one bucket");
        assert!(
            !samples.is_empty(),
            "cannot build a histogram from no samples"
        );
        let mut max = 0.0f64;
        for &s in samples {
            assert!(
                s.is_finite() && s >= 0.0,
                "samples must be finite and non-negative"
            );
            if s > max {
                max = s;
            }
        }
        // Degenerate case: all samples are zero. Use a vanishingly small
        // bucket width so the distribution's mean and quantiles are ~0 (a
        // width of 1.0 would invent a full unit of phantom work).
        let bucket_width = if max > 0.0 {
            max / buckets as f64
        } else {
            1e-30
        };
        let mut pmf = vec![0.0; buckets];
        let w = 1.0 / samples.len() as f64;
        for &s in samples {
            let idx = ((s / bucket_width) as usize).min(buckets - 1);
            pmf[idx] += w;
        }
        Self::with_pmf(bucket_width, pmf)
    }

    /// Creates a histogram directly from a probability mass function.
    ///
    /// The PMF is normalized to sum to 1.
    ///
    /// # Panics
    ///
    /// Panics if `bucket_width <= 0`, `pmf` is empty, contains negative mass,
    /// or sums to zero.
    pub fn from_pmf(pmf: Vec<f64>, bucket_width: f64) -> Self {
        assert!(bucket_width > 0.0, "bucket width must be positive");
        assert!(!pmf.is_empty(), "pmf must be non-empty");
        let mut total = 0.0;
        for &p in &pmf {
            assert!(
                p >= 0.0 && p.is_finite(),
                "pmf entries must be non-negative"
            );
            total += p;
        }
        assert!(total > 0.0, "pmf must have positive total mass");
        let pmf = pmf.into_iter().map(|p| p / total).collect();
        Self::with_pmf(bucket_width, pmf)
    }

    /// A distribution that is zero with probability one.
    pub fn zero() -> Self {
        Self::with_pmf(1.0, vec![1.0])
    }

    /// Rebuilds the histogram in place from per-bucket sample counts,
    /// reusing the PMF/CDF storage — the allocation-free path the online
    /// profiler uses to materialize its incrementally maintained counts.
    ///
    /// Produces **bit-identical** PMFs to [`Histogram::from_samples`] on the
    /// same bucketing: `from_samples` accumulates `k` additions of
    /// `w = 1/total` per bucket, which equals `k * w` exactly when `total`
    /// is a power of two (every partial sum `j/total` is then representable);
    /// for other totals the repeated addition is replayed per bucket so the
    /// rounding matches.
    ///
    /// # Panics
    ///
    /// Panics if `counts` is empty or all-zero, `total` does not equal the
    /// sum of `counts`, or `bucket_width` is not positive.
    pub fn assign_counts(&mut self, counts: &[u32], total: usize, bucket_width: f64) {
        assert!(
            !counts.is_empty(),
            "histogram must have at least one bucket"
        );
        assert!(bucket_width > 0.0, "bucket width must be positive");
        let check: u64 = counts.iter().map(|&k| u64::from(k)).sum();
        assert!(
            check == total as u64 && total > 0,
            "counts must sum to the (non-zero) sample total"
        );
        let w = 1.0 / total as f64;
        self.bucket_width = bucket_width;
        self.pmf.clear();
        if total.is_power_of_two() {
            self.pmf.extend(counts.iter().map(|&k| k as f64 * w));
        } else {
            self.pmf.extend(counts.iter().map(|&k| {
                let mut mass = 0.0;
                for _ in 0..k {
                    mass += w;
                }
                mass
            }));
        }
        self.rebuild_cdf();
    }

    /// The width of each bucket, in the histogram's unit.
    pub fn bucket_width(&self) -> f64 {
        self.bucket_width
    }

    /// Number of buckets.
    pub fn len(&self) -> usize {
        self.pmf.len()
    }

    /// Whether the histogram has no buckets (never true for constructed
    /// histograms; provided for API completeness).
    pub fn is_empty(&self) -> bool {
        self.pmf.is_empty()
    }

    /// The probability mass function.
    pub fn pmf(&self) -> &[f64] {
        &self.pmf
    }

    /// The representative value (upper edge) of bucket `i`.
    #[inline]
    pub fn bucket_value(&self, i: usize) -> f64 {
        (i + 1) as f64 * self.bucket_width
    }

    /// Mean of the distribution.
    pub fn mean(&self) -> f64 {
        self.pmf
            .iter()
            .enumerate()
            .map(|(i, &p)| p * self.bucket_value(i))
            .sum()
    }

    /// Variance of the distribution.
    pub fn variance(&self) -> f64 {
        let mean = self.mean();
        self.pmf
            .iter()
            .enumerate()
            .map(|(i, &p)| {
                let v = self.bucket_value(i);
                p * (v - mean) * (v - mean)
            })
            .sum()
    }

    /// The `q`-quantile (e.g. `q = 0.95` for the 95th percentile), reported
    /// conservatively as the upper edge of the bucket where the CDF crosses
    /// `q`. O(log n) via binary search over the cached running CDF.
    ///
    /// # Panics
    ///
    /// Panics if `q` is not within `[0, 1]`.
    pub fn quantile(&self, q: f64) -> f64 {
        self.bucket_value(self.quantile_bucket(q))
    }

    /// The index of the bucket [`Histogram::quantile`] reports — the bucket
    /// where the CDF crosses `q`. Exposed so index-space consumers (the
    /// table builder seeds its warm-start bisection from it) avoid a
    /// round-trip through the value domain.
    ///
    /// # Panics
    ///
    /// Panics if `q` is not within `[0, 1]`.
    pub fn quantile_bucket(&self, q: f64) -> usize {
        assert!((0.0..=1.0).contains(&q), "quantile must be in [0, 1]");
        let i = self.cdf.partition_point(|&c| c < q - 1e-12);
        i.min(self.pmf.len() - 1)
    }

    /// Cumulative probability `P[X <= x]`. O(1) via the cached running CDF.
    pub fn cdf(&self, x: f64) -> f64 {
        if x < 0.0 {
            return 0.0;
        }
        let idx = (x / self.bucket_width).floor() as usize;
        if idx >= self.pmf.len() {
            return 1.0;
        }
        self.cdf[idx].min(1.0)
    }

    /// Distribution of the *remaining* quantity given that `elapsed` has
    /// already been consumed without the event occurring:
    /// `P[S_rem = c] = P[S = c + elapsed | S > elapsed]`.
    ///
    /// This is how Rubik conditions the service-cycle distribution of the
    /// request currently in service on the ω cycles it has already executed
    /// (paper Sec. 4.1).
    ///
    /// If `elapsed` exceeds the histogram's support, the request has outlived
    /// every observed sample; the conservative choice is to return a
    /// one-bucket distribution at one bucket width (it will complete "soon",
    /// but not instantaneously).
    pub fn conditional_on_elapsed(&self, elapsed: f64) -> Histogram {
        let mut out = Histogram::zero();
        self.conditional_on_elapsed_into(elapsed, &mut out);
        out
    }

    /// In-place variant of [`Histogram::conditional_on_elapsed`]: writes the
    /// conditioned distribution into `out`, reusing its PMF/CDF storage.
    /// Produces bit-identical values to the allocating version (same sums,
    /// same divisions, in the same order); the periodic table rebuild calls
    /// this once per progress row without allocating.
    pub fn conditional_on_elapsed_into(&self, elapsed: f64, out: &mut Histogram) {
        assert!(elapsed >= 0.0, "elapsed must be non-negative");
        out.bucket_width = self.bucket_width;
        out.pmf.clear();
        let shift = (elapsed / self.bucket_width).floor() as usize;
        let tail_mass: f64 = if shift >= self.pmf.len() {
            0.0
        } else {
            self.pmf[shift..].iter().sum()
        };
        if shift >= self.pmf.len() || tail_mass <= 0.0 {
            out.pmf.push(1.0);
        } else {
            out.pmf
                .extend(self.pmf[shift..].iter().map(|&p| p / tail_mass));
        }
        out.rebuild_cdf();
    }

    /// Convolution of two distributions: the distribution of the sum of two
    /// independent draws.
    ///
    /// # Panics
    ///
    /// Panics if the bucket widths differ by more than 1 part in 10⁶: summing
    /// distributions only makes sense on a common grid. Use
    /// [`Histogram::rebucket`] first.
    pub fn convolve(&self, other: &Histogram) -> Histogram {
        let rel = (self.bucket_width - other.bucket_width).abs()
            / self.bucket_width.max(other.bucket_width);
        assert!(
            rel < 1e-6,
            "cannot convolve histograms with different bucket widths ({} vs {})",
            self.bucket_width,
            other.bucket_width
        );
        // Representative values are upper edges ((i+1)·w), so the sum of the
        // representatives of buckets i and j is (i+j+2)·w, which is bucket
        // index i+j+1 in the result. Prepending one empty bucket keeps the
        // convolution exact on representatives: means and variances add.
        let mut pmf = Vec::with_capacity(self.pmf.len() + other.pmf.len());
        pmf.push(0.0);
        pmf.extend(fft::convolve(&self.pmf, &other.pmf));
        Histogram::with_pmf(self.bucket_width, pmf)
    }

    /// Re-expresses the distribution on a grid with `buckets` buckets and the
    /// given `bucket_width`, merging and/or truncating mass as needed. Mass
    /// beyond the new support is accumulated in the last bucket so that
    /// quantiles remain conservative.
    pub fn rebucket(&self, bucket_width: f64, buckets: usize) -> Histogram {
        assert!(bucket_width > 0.0 && buckets > 0);
        let mut pmf = vec![0.0; buckets];
        for (i, &p) in self.pmf.iter().enumerate() {
            let v = self.bucket_value(i);
            let idx = ((v / bucket_width).ceil() as usize)
                .saturating_sub(1)
                .min(buckets - 1);
            pmf[idx] += p;
        }
        Histogram::with_pmf(bucket_width, pmf)
    }

    /// Scales the quantity axis by `factor` (e.g. converting cycles at one
    /// frequency into seconds).
    ///
    /// # Panics
    ///
    /// Panics if `factor <= 0`.
    pub fn scale(&self, factor: f64) -> Histogram {
        assert!(factor > 0.0, "scale factor must be positive");
        Histogram {
            bucket_width: self.bucket_width * factor,
            pmf: self.pmf.clone(),
            cdf: self.cdf.clone(),
        }
    }

    /// Truncates trailing buckets holding less than `epsilon` total mass,
    /// renormalizing. Keeps convolution costs bounded.
    pub fn trim_tail(&self, epsilon: f64) -> Histogram {
        let mut out = Histogram::zero();
        self.trim_tail_into(epsilon, &mut out);
        out
    }

    /// In-place variant of [`Histogram::trim_tail`]: writes the trimmed,
    /// renormalized distribution into `out`, reusing its storage. Replicates
    /// the allocating version's arithmetic exactly (the same
    /// [`Histogram::from_pmf`] normalization sum and divisions, in the same
    /// order), so results are bit-identical.
    ///
    /// # Panics
    ///
    /// Panics if the retained prefix has no positive mass (mirrors
    /// [`Histogram::from_pmf`]).
    pub fn trim_tail_into(&self, epsilon: f64, out: &mut Histogram) {
        let mut cum = 0.0;
        let mut cut = self.pmf.len();
        for (i, &p) in self.pmf.iter().enumerate().rev() {
            cum += p;
            if cum > epsilon {
                cut = i + 1;
                break;
            }
        }
        let keep = &self.pmf[..cut.max(1)];
        // from_pmf's normalization, in place: same left-to-right total, same
        // per-entry division.
        let mut total = 0.0;
        for &p in keep {
            total += p;
        }
        assert!(total > 0.0, "pmf must have positive total mass");
        out.bucket_width = self.bucket_width;
        out.pmf.clear();
        out.pmf.extend(keep.iter().map(|&p| p / total));
        out.rebuild_cdf();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn uniform_samples(n: usize, max: f64) -> Vec<f64> {
        (0..n).map(|i| max * (i as f64 + 0.5) / n as f64).collect()
    }

    #[test]
    fn from_samples_mass_sums_to_one() {
        let h = Histogram::from_samples(&uniform_samples(1000, 10.0), 128);
        let total: f64 = h.pmf().iter().sum();
        assert!((total - 1.0).abs() < 1e-9);
        assert_eq!(h.len(), 128);
    }

    #[test]
    fn mean_of_uniform_is_centered() {
        let h = Histogram::from_samples(&uniform_samples(10_000, 10.0), 128);
        // Upper-edge representative values bias the mean up by at most one
        // bucket width.
        assert!((h.mean() - 5.0).abs() < 0.1);
    }

    #[test]
    fn quantile_is_monotone_in_q() {
        let h = Histogram::from_samples(&uniform_samples(1000, 100.0), 64);
        let mut prev = 0.0;
        for i in 0..=20 {
            let q = i as f64 / 20.0;
            let v = h.quantile(q);
            assert!(v >= prev);
            prev = v;
        }
    }

    #[test]
    fn quantile_never_underestimates_samples() {
        // Conservative bucketing: the p-quantile of the histogram must be at
        // least the p-quantile of the underlying samples.
        let samples = uniform_samples(5000, 42.0);
        let h = Histogram::from_samples(&samples, 128);
        let mut sorted = samples.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        for q in [0.5, 0.9, 0.95, 0.99] {
            let exact = sorted[((sorted.len() - 1) as f64 * q) as usize];
            assert!(h.quantile(q) >= exact - 1e-9);
        }
    }

    #[test]
    fn cdf_is_monotone_and_bounded() {
        let h = Histogram::from_samples(&uniform_samples(1000, 10.0), 32);
        assert_eq!(h.cdf(-1.0), 0.0);
        assert!((h.cdf(1e9) - 1.0).abs() < 1e-12);
        let mut prev = 0.0;
        for i in 0..100 {
            let c = h.cdf(i as f64 * 0.1);
            assert!(c >= prev - 1e-12);
            prev = c;
        }
    }

    #[test]
    fn conditional_on_zero_elapsed_is_identity() {
        let h = Histogram::from_samples(&uniform_samples(1000, 10.0), 64);
        let c = h.conditional_on_elapsed(0.0);
        assert_eq!(c.len(), h.len());
        for (a, b) in c.pmf().iter().zip(h.pmf()) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn conditional_shifts_and_renormalizes() {
        let h = Histogram::from_pmf(vec![0.25, 0.25, 0.25, 0.25], 1.0);
        // After 2 units elapsed, only buckets 2 and 3 remain, renormalized.
        let c = h.conditional_on_elapsed(2.0);
        assert_eq!(c.len(), 2);
        assert!((c.pmf()[0] - 0.5).abs() < 1e-12);
        assert!((c.pmf()[1] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn conditional_beyond_support_is_one_bucket() {
        let h = Histogram::from_pmf(vec![0.5, 0.5], 1.0);
        let c = h.conditional_on_elapsed(100.0);
        assert_eq!(c.len(), 1);
        assert!((c.pmf()[0] - 1.0).abs() < 1e-12);
        assert_eq!(c.quantile(0.95), c.bucket_width());
    }

    #[test]
    fn convolve_means_add() {
        let a = Histogram::from_samples(&uniform_samples(2000, 4.0), 64);
        let b = Histogram::from_samples(&uniform_samples(2000, 4.0), 64);
        let c = a.convolve(&b);
        assert!((c.mean() - (a.mean() + b.mean())).abs() < 1e-6 * c.mean());
    }

    #[test]
    fn convolve_variances_add() {
        let a = Histogram::from_samples(&uniform_samples(2000, 4.0), 64);
        let c = a.convolve(&a);
        assert!((c.variance() - 2.0 * a.variance()).abs() < 1e-3 * c.variance().max(1.0));
    }

    #[test]
    #[should_panic(expected = "different bucket widths")]
    fn convolve_rejects_mismatched_widths() {
        let a = Histogram::from_pmf(vec![1.0], 1.0);
        let b = Histogram::from_pmf(vec![1.0], 2.0);
        let _ = a.convolve(&b);
    }

    #[test]
    fn scale_scales_quantiles() {
        let h = Histogram::from_samples(&uniform_samples(1000, 10.0), 64);
        let s = h.scale(2.0);
        assert!((s.quantile(0.9) - 2.0 * h.quantile(0.9)).abs() < 1e-9);
        assert!((s.mean() - 2.0 * h.mean()).abs() < 1e-9);
    }

    #[test]
    fn rebucket_preserves_total_mass_and_is_conservative() {
        let h = Histogram::from_samples(&uniform_samples(1000, 10.0), 128);
        let r = h.rebucket(0.5, 16);
        assert!((r.pmf().iter().sum::<f64>() - 1.0).abs() < 1e-9);
        // Mass beyond the new support is dumped into the last bucket, so the
        // extreme quantile saturates at the new maximum.
        assert!(r.quantile(0.99) <= 8.0 + 1e-9);
        assert!(r.quantile(0.5) >= h.quantile(0.5) - 0.5);
    }

    #[test]
    fn trim_tail_keeps_mass_normalized() {
        let mut pmf = vec![0.0; 100];
        pmf[0] = 0.999;
        pmf[99] = 0.001;
        let h = Histogram::from_pmf(pmf, 1.0);
        let t = h.trim_tail(0.01);
        assert!(t.len() < 100);
        assert!((t.pmf().iter().sum::<f64>() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn assign_counts_matches_from_samples_bitwise() {
        // Power-of-two and non-power-of-two totals: both paths must replay
        // from_samples' floating-point accumulation exactly.
        for n in [256usize, 1000, 4096, 37] {
            let samples: Vec<f64> = (0..n).map(|i| ((i * 97) % 313) as f64 * 0.37).collect();
            let reference = Histogram::from_samples(&samples, 64);
            let mut counts = vec![0u32; 64];
            for &s in &samples {
                let idx = ((s / reference.bucket_width()) as usize).min(63);
                counts[idx] += 1;
            }
            let mut h = Histogram::zero();
            h.assign_counts(&counts, n, reference.bucket_width());
            assert_eq!(h.pmf(), reference.pmf(), "n = {n}");
            assert_eq!(h.bucket_width(), reference.bucket_width());
            assert_eq!(h.quantile(0.95), reference.quantile(0.95));
        }
    }

    #[test]
    fn assign_counts_reuses_storage() {
        let mut h = Histogram::zero();
        h.assign_counts(&[1, 2, 3, 10], 16, 0.5);
        let before = h.pmf().as_ptr();
        h.assign_counts(&[4, 4, 4, 4], 16, 0.25);
        assert_eq!(before, h.pmf().as_ptr(), "refill must not reallocate");
    }

    #[test]
    #[should_panic(expected = "counts must sum")]
    fn assign_counts_rejects_mismatched_total() {
        let mut h = Histogram::zero();
        h.assign_counts(&[1, 2], 4, 1.0);
    }

    #[test]
    fn into_variants_match_allocating_versions() {
        let h = Histogram::from_samples(&uniform_samples(3000, 12.0), 128);
        let mut scratch = Histogram::zero();
        for eps in [1e-9, 1e-3, 0.2] {
            h.trim_tail_into(eps, &mut scratch);
            let fresh = h.trim_tail(eps);
            assert_eq!(scratch.pmf(), fresh.pmf(), "eps = {eps}");
            assert_eq!(scratch.bucket_width(), fresh.bucket_width());
        }
        for elapsed in [0.0, 3.7, 11.9, 400.0] {
            h.conditional_on_elapsed_into(elapsed, &mut scratch);
            let fresh = h.conditional_on_elapsed(elapsed);
            assert_eq!(scratch.pmf(), fresh.pmf(), "elapsed = {elapsed}");
            assert_eq!(scratch.quantile(0.9), fresh.quantile(0.9));
        }
    }

    #[test]
    fn quantile_bucket_is_the_reported_bucket() {
        let h = Histogram::from_samples(&uniform_samples(500, 7.0), 32);
        for i in 0..=20 {
            let q = i as f64 / 20.0;
            assert_eq!(h.quantile(q), h.bucket_value(h.quantile_bucket(q)));
        }
    }

    #[test]
    fn zero_histogram() {
        let z = Histogram::zero();
        assert_eq!(z.quantile(0.99), 1.0);
        assert!((z.mean() - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "no samples")]
    fn from_samples_rejects_empty() {
        let _ = Histogram::from_samples(&[], 8);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn from_samples_rejects_negative() {
        let _ = Histogram::from_samples(&[1.0, -2.0], 8);
    }
}
