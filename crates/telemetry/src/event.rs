//! Timestamped lifecycle events for requests and servers.
//!
//! Events are recorded by the cluster driver at the same fault-boundary
//! instants it already sequences, so an event stream is a deterministic
//! function of the run configuration: same trace, same plan, same seed ⇒
//! byte-identical events, regardless of sweep thread count.

use serde::{Deserialize, Serialize};

/// One lifecycle event of one request.
///
/// The owning request id is kept outside the event (see
/// [`crate::Recorder`]) so the event itself stays a small `Copy` value.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RequestEvent {
    /// Simulated time the event occurred.
    pub at: f64,
    /// What happened.
    pub kind: RequestEventKind,
}

/// The kinds of request lifecycle events the driver records.
///
/// Service start / end are *not* events: they are already captured exactly by
/// [`rubik_sim::RequestRecord`] and merged into the trace at finalize, which
/// keeps the simulator hot path untouched.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum RequestEventKind {
    /// Delivery attempt `attempt` (1-based) was routed to `server`.
    Routed {
        /// Target server index.
        server: u32,
        /// 1-based delivery attempt number.
        attempt: u32,
    },
    /// The request timed out while waiting on `server` and was pulled back.
    TimedOut {
        /// Server the attempt was waiting on.
        server: u32,
        /// The attempt that timed out.
        attempt: u32,
    },
    /// A retry was scheduled; the request sits in client backoff until
    /// `until`, when it is re-routed.
    Backoff {
        /// Time the retry becomes due.
        until: f64,
    },
    /// In-service work was salvaged off crashing server `server` and will be
    /// re-delivered through the retry path.
    Salvaged {
        /// The server that crashed mid-service.
        server: u32,
    },
    /// Queued work was force-moved off crashing server `from` to `to`.
    Requeued {
        /// The server that crashed.
        from: u32,
        /// The server that absorbed the stranded work.
        to: u32,
    },
    /// Queued work was moved from `from` to `to` by the migrator.
    Migrated {
        /// Source of the migration hop.
        from: u32,
        /// Destination of the migration hop.
        to: u32,
    },
    /// The request was dropped on `server` (crash without salvage, or retry
    /// budget exhausted) and counts as lost.
    Dropped {
        /// Server the request was lost on.
        server: u32,
    },
    /// A speculative duplicate of attempt `attempt` was launched on
    /// `server` because the primary's age crossed the hedge trigger.
    Hedged {
        /// Server the duplicate was routed to.
        server: u32,
        /// The attempt the duplicate shadows.
        attempt: u32,
    },
    /// The hedged duplicate on `server` finished first: the request's
    /// completion came from the speculative copy, not the primary.
    HedgeWon {
        /// Server whose duplicate completed.
        server: u32,
    },
    /// The losing copy was cancelled on `server` after the other copy
    /// completed first (first-completion-wins).
    HedgeCancelled {
        /// Server the losing copy was removed from.
        server: u32,
    },
}

/// A state change of one server, as injected by the fault plan.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ServerEvent {
    /// Simulated time the event occurred.
    pub at: f64,
    /// Index of the affected server.
    pub server: u32,
    /// What happened.
    pub kind: ServerEventKind,
}

/// The kinds of server state changes the driver records.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ServerEventKind {
    /// The server crashed and stops serving.
    Down,
    /// The server recovered and resumes serving.
    Up,
    /// The server started running `slowdown`× slower than nominal.
    StraggleStart {
        /// Multiplicative service-time inflation (> 1).
        slowdown: f64,
    },
    /// A straggle window ended.
    StraggleEnd,
    /// DVFS became stuck at `mhz` (or unstuck when `None`).
    FreqStuck {
        /// The pinned frequency in MHz, or `None` when the fault clears.
        mhz: Option<u32>,
    },
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_are_small_copy_values() {
        // The disabled-telemetry contract leans on events being cheap to
        // construct unconditionally at call sites.
        assert!(std::mem::size_of::<RequestEvent>() <= 32);
        assert!(std::mem::size_of::<ServerEvent>() <= 32);
    }
}
