//! Trace capture and replay.
//!
//! The paper's trace-driven characterization (Sec. 5.3) captures per-request
//! arrival times, core cycles, and memory-bound times, and replays the same
//! trace under different schemes so that every scheme sees an identical
//! request stream. These helpers persist [`Trace`]s as JSON so experiments
//! can be captured once and replayed by multiple harness binaries.

use std::fs::File;
use std::io::{BufReader, BufWriter, Read, Write};
use std::path::Path;

use rubik_sim::Trace;

/// Errors returned by trace I/O.
#[derive(Debug)]
pub enum TraceIoError {
    /// The underlying file could not be read or written.
    Io(std::io::Error),
    /// The file contents could not be parsed as a trace.
    Parse(serde_json::Error),
}

impl std::fmt::Display for TraceIoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceIoError::Io(e) => write!(f, "trace file I/O failed: {e}"),
            TraceIoError::Parse(e) => write!(f, "trace file is not a valid trace: {e}"),
        }
    }
}

impl std::error::Error for TraceIoError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TraceIoError::Io(e) => Some(e),
            TraceIoError::Parse(e) => Some(e),
        }
    }
}

impl From<std::io::Error> for TraceIoError {
    fn from(e: std::io::Error) -> Self {
        TraceIoError::Io(e)
    }
}

impl From<serde_json::Error> for TraceIoError {
    fn from(e: serde_json::Error) -> Self {
        TraceIoError::Parse(e)
    }
}

/// Serializes a trace to a JSON string.
pub fn to_json(trace: &Trace) -> String {
    serde_json::to_string(trace).expect("traces always serialize")
}

/// Parses a trace from a JSON string.
///
/// # Errors
///
/// Returns [`TraceIoError::Parse`] if the string is not a valid trace.
pub fn from_json(json: &str) -> Result<Trace, TraceIoError> {
    Ok(serde_json::from_str(json)?)
}

/// Writes a trace to a JSON file.
///
/// # Errors
///
/// Returns [`TraceIoError::Io`] if the file cannot be written.
pub fn save<P: AsRef<Path>>(trace: &Trace, path: P) -> Result<(), TraceIoError> {
    let file = File::create(path)?;
    let mut writer = BufWriter::new(file);
    writer.write_all(to_json(trace).as_bytes())?;
    Ok(())
}

/// Reads a trace from a JSON file.
///
/// # Errors
///
/// Returns [`TraceIoError::Io`] if the file cannot be read and
/// [`TraceIoError::Parse`] if it is not a valid trace.
pub fn load<P: AsRef<Path>>(path: P) -> Result<Trace, TraceIoError> {
    let file = File::open(path)?;
    let mut reader = BufReader::new(file);
    let mut contents = String::new();
    reader.read_to_string(&mut contents)?;
    from_json(&contents)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{AppProfile, WorkloadGenerator};

    /// JSON text round-trips floats to within one ULP; for trace replay that
    /// is indistinguishable, so the tests compare with a tight relative
    /// tolerance rather than bitwise equality.
    fn assert_traces_equivalent(a: &Trace, b: &Trace) {
        assert_eq!(a.len(), b.len());
        for (x, y) in a.requests().iter().zip(b.requests()) {
            assert_eq!(x.id, y.id);
            assert_eq!(x.class, y.class);
            assert!((x.arrival - y.arrival).abs() <= 1e-12 * x.arrival.abs().max(1.0));
            assert!(
                (x.compute_cycles - y.compute_cycles).abs()
                    <= 1e-12 * x.compute_cycles.abs().max(1.0)
            );
            assert!(
                (x.membound_time - y.membound_time).abs()
                    <= 1e-12 * x.membound_time.abs().max(1.0)
            );
        }
    }

    #[test]
    fn json_roundtrip_preserves_trace() {
        let mut g = WorkloadGenerator::new(AppProfile::masstree(), 1);
        let trace = g.steady_trace(0.4, 200);
        let json = to_json(&trace);
        let back = from_json(&json).unwrap();
        assert_traces_equivalent(&trace, &back);
    }

    #[test]
    fn file_roundtrip_preserves_trace() {
        let mut g = WorkloadGenerator::new(AppProfile::shore(), 2);
        let trace = g.steady_trace(0.3, 100);
        let dir = std::env::temp_dir();
        let path = dir.join("rubik_trace_io_test.json");
        save(&trace, &path).unwrap();
        let back = load(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_traces_equivalent(&trace, &back);
    }

    #[test]
    fn parse_error_is_reported() {
        let err = from_json("not json").unwrap_err();
        assert!(matches!(err, TraceIoError::Parse(_)));
        assert!(err.to_string().contains("not a valid trace"));
    }

    #[test]
    fn missing_file_is_reported_as_io_error() {
        let err = load("/nonexistent/rubik/trace.json").unwrap_err();
        assert!(matches!(err, TraceIoError::Io(_)));
    }
}
