//! Property-based tests for the statistical primitives Rubik's correctness
//! rests on: histograms never lose probability mass, quantiles are monotone
//! and conservative, convolution preserves mass and adds means, and the
//! Gaussian quantile inverts the CDF.

use proptest::prelude::*;
use rubik_stats::{convolve, gaussian_quantile, percentile, standard_normal_cdf, Histogram};

fn sample_vec() -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(0.0f64..1e6, 1..200)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn histogram_mass_is_conserved(samples in sample_vec(), buckets in 1usize..256) {
        let hist = Histogram::from_samples(&samples, buckets);
        let total: f64 = hist.pmf().iter().sum();
        prop_assert!((total - 1.0).abs() < 1e-6);
    }

    #[test]
    fn histogram_quantiles_are_monotone_and_conservative(samples in sample_vec()) {
        let hist = Histogram::from_samples(&samples, 128);
        let mut sorted = samples.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let mut prev = 0.0;
        for i in 1..=10 {
            let q = i as f64 / 10.0;
            let v = hist.quantile(q);
            prop_assert!(v >= prev);
            prev = v;
            // Conservative: never below the exact empirical quantile.
            let exact = sorted[((sorted.len() - 1) as f64 * q) as usize];
            prop_assert!(v >= exact - 1e-9);
        }
    }

    #[test]
    fn conditional_distribution_keeps_unit_mass(samples in sample_vec(), frac in 0.0f64..1.5) {
        let hist = Histogram::from_samples(&samples, 64);
        let elapsed = frac * hist.quantile(0.99);
        let cond = hist.conditional_on_elapsed(elapsed);
        let total: f64 = cond.pmf().iter().sum();
        prop_assert!((total - 1.0).abs() < 1e-6);
    }

    #[test]
    fn convolution_preserves_mass_and_adds_means(a in sample_vec(), b in sample_vec()) {
        let ha = Histogram::from_samples(&a, 64);
        let hb = Histogram::from_samples(&b, 64).rebucket(ha.bucket_width(), 64);
        let c = ha.convolve(&hb);
        let total: f64 = c.pmf().iter().sum();
        prop_assert!((total - 1.0).abs() < 1e-6);
        prop_assert!((c.mean() - (ha.mean() + hb.mean())).abs() < 1e-6 * c.mean().max(1.0));
    }

    #[test]
    fn raw_convolution_is_commutative(a in prop::collection::vec(0.0f64..1.0, 1..64),
                                      b in prop::collection::vec(0.0f64..1.0, 1..64)) {
        let ab = convolve(&a, &b);
        let ba = convolve(&b, &a);
        prop_assert_eq!(ab.len(), ba.len());
        for (x, y) in ab.iter().zip(&ba) {
            prop_assert!((x - y).abs() < 1e-9);
        }
    }

    #[test]
    fn percentile_is_bounded_by_min_and_max(samples in sample_vec(), q in 0.0f64..=1.0) {
        let p = percentile(&samples, q).unwrap();
        let min = samples.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = samples.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(p >= min && p <= max);
    }

    #[test]
    fn gaussian_quantile_inverts_cdf(p in 0.001f64..0.999) {
        let x = gaussian_quantile(p);
        prop_assert!((standard_normal_cdf(x) - p).abs() < 1e-4);
    }
}
