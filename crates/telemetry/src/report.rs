//! Tail-latency attribution: decompose the tail cohort's latency into
//! queueing / service / backoff / downtime components.
//!
//! The decomposition walks each request's lifecycle events to reconstruct
//! *where* the request was waiting at every instant, then charges each wall
//! -clock slice to one bucket:
//!
//! - **service** — in service on the completing server (from the record);
//! - **backoff** — parked client-side between a timeout/salvage and the
//!   retry delivery;
//! - **downtime** — enqueued on a server while that server was crashed;
//! - **queueing** — everything else (healthy-server queueing delay).
//!
//! The buckets are exhaustive and non-overlapping, so per request
//! `queueing + service + backoff + downtime == total` (up to float
//! rounding, which the queueing residual absorbs).

use serde::{Deserialize, Serialize};

use crate::event::RequestEventKind;
use crate::log::{RequestTrace, TraceLog};
use rubik_stats::percentile;

/// One request's latency split into attribution buckets.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct LatencyBreakdown {
    /// Time waiting in a healthy server's queue.
    pub queueing: f64,
    /// Time in service on the completing server.
    pub service: f64,
    /// Time parked client-side between retries.
    pub backoff: f64,
    /// Time enqueued on a crashed server.
    pub downtime: f64,
    /// End-to-end latency.
    pub total: f64,
    /// Forced moves (migration hops + crash requeues).
    pub hops: u32,
}

impl LatencyBreakdown {
    fn accumulate(&mut self, other: &LatencyBreakdown) {
        self.queueing += other.queueing;
        self.service += other.service;
        self.backoff += other.backoff;
        self.downtime += other.downtime;
        self.total += other.total;
        self.hops += other.hops;
    }

    fn scaled(&self, inv: f64) -> LatencyBreakdown {
        LatencyBreakdown {
            queueing: self.queueing * inv,
            service: self.service * inv,
            backoff: self.backoff * inv,
            downtime: self.downtime * inv,
            total: self.total * inv,
            hops: self.hops,
        }
    }
}

/// Attribution of a tail cohort, produced by [`TraceLog::attribute`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AttributionReport {
    /// The tail quantile the cohort was selected at (e.g. `0.95`).
    pub quantile: f64,
    /// Completed requests in the log.
    pub completed: usize,
    /// Offered requests that never completed.
    pub lost: usize,
    /// Latency at the quantile; the cohort is every completed request at or
    /// above it.
    pub threshold: f64,
    /// Cohort size.
    pub cohort: usize,
    /// Mean breakdown over the cohort (`hops` is the cohort total).
    pub cohort_mean: LatencyBreakdown,
    /// Mean breakdown over *all* completed requests.
    pub overall_mean: LatencyBreakdown,
    /// Completed requests that launched a hedged duplicate.
    pub hedged: usize,
    /// Hedged requests whose duplicate finished first.
    pub hedge_wins: usize,
    /// Cohort requests that launched a hedged duplicate.
    pub cohort_hedged: usize,
    /// Cohort requests whose duplicate finished first.
    pub cohort_hedge_wins: usize,
}

impl AttributionReport {
    /// Render the fixed-format breakdown table pinned by the golden fixture.
    pub fn table(&self) -> String {
        let mut out = String::new();
        let pct = self.quantile * 100.0;
        let label = if (pct - pct.round()).abs() < 1e-9 {
            format!("p{:.0}", pct)
        } else {
            format!("p{:.1}", pct)
        };
        out.push_str(&format!(
            "{} tail attribution: cohort {} of {} completed ({} lost), threshold {:.4} ms\n",
            label,
            self.cohort,
            self.completed,
            self.lost,
            self.threshold * 1e3,
        ));
        out.push_str("  component   cohort ms   share   overall ms\n");
        let total = self.cohort_mean.total.max(f64::MIN_POSITIVE);
        for (name, cohort, overall) in [
            (
                "queueing",
                self.cohort_mean.queueing,
                self.overall_mean.queueing,
            ),
            (
                "service",
                self.cohort_mean.service,
                self.overall_mean.service,
            ),
            (
                "backoff",
                self.cohort_mean.backoff,
                self.overall_mean.backoff,
            ),
            (
                "downtime",
                self.cohort_mean.downtime,
                self.overall_mean.downtime,
            ),
            ("total", self.cohort_mean.total, self.overall_mean.total),
        ] {
            out.push_str(&format!(
                "  {:<10} {:>9.4}  {:>5.1}%  {:>10.4}\n",
                name,
                cohort * 1e3,
                100.0 * cohort / total,
                overall * 1e3,
            ));
        }
        out.push_str(&format!(
            "  forced moves per cohort request: {:.2}\n",
            self.cohort_mean.hops as f64 / (self.cohort.max(1)) as f64,
        ));
        // Hedging line only when the run hedged at all, so traces from
        // hedge-free runs (and their golden fixtures) render unchanged.
        if self.hedged > 0 {
            out.push_str(&format!(
                "  hedged: {} of {} completed ({} won); cohort {} ({} won)\n",
                self.hedged,
                self.completed,
                self.hedge_wins,
                self.cohort_hedged,
                self.cohort_hedge_wins,
            ));
        }
        out
    }
}

/// Total overlap between `[from, to)` and a set of disjoint windows.
fn overlap(from: f64, to: f64, windows: &[(f64, f64)]) -> f64 {
    windows
        .iter()
        .map(|&(a, b)| (to.min(b) - from.max(a)).max(0.0))
        .sum()
}

/// Decompose one completed request against the fleet's down windows.
///
/// `down` is indexed by server, as returned by [`TraceLog::down_windows`].
pub fn breakdown(request: &RequestTrace, down: &[Vec<(f64, f64)>]) -> Option<LatencyBreakdown> {
    let completion = request.completion?;
    let start = request.start.unwrap_or(completion);
    let total = completion - request.arrival;
    let service = completion - start;
    let mut backoff = 0.0;
    let mut downtime = 0.0;
    // Walk the request's location timeline: (server, since) while enqueued.
    let mut location: Option<(u32, f64)> = None;
    let mut close = |loc: &mut Option<(u32, f64)>, at: f64| {
        if let Some((server, since)) = loc.take() {
            if let Some(windows) = down.get(server as usize) {
                downtime += overlap(since, at, windows);
            }
        }
    };
    for event in &request.events {
        match event.kind {
            RequestEventKind::Routed { server, .. } => {
                close(&mut location, event.at);
                location = Some((server, event.at));
            }
            RequestEventKind::Requeued { to, .. } | RequestEventKind::Migrated { to, .. } => {
                close(&mut location, event.at);
                location = Some((to, event.at));
            }
            RequestEventKind::TimedOut { .. }
            | RequestEventKind::Salvaged { .. }
            | RequestEventKind::Dropped { .. } => {
                close(&mut location, event.at);
            }
            RequestEventKind::Backoff { until } => {
                backoff += (until - event.at).max(0.0);
            }
            // The hedged duplicate waits in parallel with the primary, and
            // the buckets charge each wall-clock slice exactly once, so the
            // primary's location keeps the charge; hedging shows up as a
            // shorter total, not as a new bucket.
            RequestEventKind::Hedged { .. }
            | RequestEventKind::HedgeWon { .. }
            | RequestEventKind::HedgeCancelled { .. } => {}
        }
    }
    // The final wait ends when service starts.
    close(&mut location, start);
    let queueing = (total - service - backoff - downtime).max(0.0);
    Some(LatencyBreakdown {
        queueing,
        service,
        backoff,
        downtime,
        total,
        hops: request.hops(),
    })
}

impl TraceLog {
    /// Attribute the latency of the tail cohort at `quantile`.
    ///
    /// Returns `None` when no request completed (there is no tail to
    /// attribute).
    pub fn attribute(&self, quantile: f64) -> Option<AttributionReport> {
        let down = self.down_windows();
        let flags = |r: &RequestTrace| {
            let hedged = r
                .events
                .iter()
                .any(|e| matches!(e.kind, RequestEventKind::Hedged { .. }));
            let won = r
                .events
                .iter()
                .any(|e| matches!(e.kind, RequestEventKind::HedgeWon { .. }));
            (hedged, won)
        };
        let mut rows: Vec<(f64, LatencyBreakdown, (bool, bool))> = self
            .requests
            .iter()
            .filter_map(|r| breakdown(r, &down).map(|b| (b.total, b, flags(r))))
            .collect();
        if rows.is_empty() {
            return None;
        }
        rows.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite latencies"));
        let latencies: Vec<f64> = rows.iter().map(|&(t, ..)| t).collect();
        let threshold = percentile(&latencies, quantile)?;
        let mut cohort_mean = LatencyBreakdown::default();
        let mut overall_mean = LatencyBreakdown::default();
        let mut cohort = 0usize;
        let (mut hedged, mut hedge_wins) = (0usize, 0usize);
        let (mut cohort_hedged, mut cohort_hedge_wins) = (0usize, 0usize);
        for (total, row, (was_hedged, won)) in &rows {
            overall_mean.accumulate(row);
            hedged += usize::from(*was_hedged);
            hedge_wins += usize::from(*won);
            if *total >= threshold {
                cohort_mean.accumulate(row);
                cohort += 1;
                cohort_hedged += usize::from(*was_hedged);
                cohort_hedge_wins += usize::from(*won);
            }
        }
        let cohort_hops = cohort_mean.hops;
        let mut cohort_mean = cohort_mean.scaled(1.0 / cohort.max(1) as f64);
        cohort_mean.hops = cohort_hops;
        let overall_hops = overall_mean.hops;
        let mut overall_mean = overall_mean.scaled(1.0 / rows.len() as f64);
        overall_mean.hops = overall_hops;
        Some(AttributionReport {
            quantile,
            completed: rows.len(),
            lost: self.lost(),
            threshold,
            cohort,
            cohort_mean,
            overall_mean,
            hedged,
            hedge_wins,
            cohort_hedged,
            cohort_hedge_wins,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{RequestEvent, ServerEvent, ServerEventKind};

    fn request(
        id: u64,
        arrival: f64,
        start: f64,
        completion: f64,
        events: Vec<RequestEvent>,
    ) -> RequestTrace {
        RequestTrace {
            id,
            arrival,
            start: Some(start),
            completion: Some(completion),
            server: Some(0),
            events,
        }
    }

    fn routed(at: f64, server: u32, attempt: u32) -> RequestEvent {
        RequestEvent {
            at,
            kind: RequestEventKind::Routed { server, attempt },
        }
    }

    #[test]
    fn plain_request_splits_into_queueing_and_service() {
        let r = request(0, 1.0, 1.4, 2.0, vec![routed(1.0, 0, 1)]);
        let b = breakdown(&r, &[Vec::new()]).unwrap();
        assert_eq!(b.total, 1.0);
        assert!((b.service - 0.6).abs() < 1e-12);
        assert!((b.queueing - 0.4).abs() < 1e-12);
        assert_eq!(b.backoff, 0.0);
        assert_eq!(b.downtime, 0.0);
    }

    #[test]
    fn downtime_counts_only_while_parked_on_the_crashed_server() {
        // Routed to server 0 at t=0; server 0 down over [1, 3]; requeued to
        // server 1 at t=3; service on 1 over [4, 5].
        let events = vec![
            routed(0.0, 0, 1),
            RequestEvent {
                at: 3.0,
                kind: RequestEventKind::Requeued { from: 0, to: 1 },
            },
        ];
        let r = request(0, 0.0, 4.0, 5.0, events);
        let down = vec![vec![(1.0, 3.0)], Vec::new()];
        let b = breakdown(&r, &down).unwrap();
        assert_eq!(b.total, 5.0);
        assert_eq!(b.service, 1.0);
        assert_eq!(b.downtime, 2.0);
        assert!((b.queueing - 2.0).abs() < 1e-12);
        assert_eq!(b.hops, 1);
    }

    #[test]
    fn backoff_charges_the_scheduled_retry_gap() {
        // Timed out on server 0 at t=1, backed off until t=1.5, retried on
        // server 1, served over [2, 3].
        let events = vec![
            routed(0.0, 0, 1),
            RequestEvent {
                at: 1.0,
                kind: RequestEventKind::TimedOut {
                    server: 0,
                    attempt: 1,
                },
            },
            RequestEvent {
                at: 1.0,
                kind: RequestEventKind::Backoff { until: 1.5 },
            },
            routed(1.5, 1, 2),
        ];
        let r = request(0, 0.0, 2.0, 3.0, events);
        let b = breakdown(&r, &[Vec::new(), Vec::new()]).unwrap();
        assert_eq!(b.service, 1.0);
        assert_eq!(b.backoff, 0.5);
        assert!((b.queueing - 1.5).abs() < 1e-12);
    }

    #[test]
    fn lost_requests_are_excluded() {
        let r = RequestTrace {
            id: 0,
            arrival: 0.0,
            start: None,
            completion: None,
            server: None,
            events: vec![routed(0.0, 0, 1)],
        };
        assert!(breakdown(&r, &[Vec::new()]).is_none());
    }

    #[test]
    fn attribute_selects_the_tail_cohort() {
        let mut log = TraceLog {
            servers: 1,
            end: 100.0,
            ..TraceLog::default()
        };
        // 20 requests with latencies 1..=20 ms; p95 cohort = the slowest.
        for i in 0..20u64 {
            let lat = (i + 1) as f64 * 1e-3;
            log.requests
                .push(request(i, 0.0, lat * 0.25, lat, vec![routed(0.0, 0, 1)]));
        }
        let report = log.attribute(0.95).unwrap();
        assert_eq!(report.completed, 20);
        assert!(report.cohort >= 1 && report.cohort <= 2);
        assert!(report.cohort_mean.total >= 0.019);
        // Components sum back to the total.
        let m = &report.cohort_mean;
        assert!((m.queueing + m.service + m.backoff + m.downtime - m.total).abs() < 1e-12);
        let rendered = report.table();
        assert!(rendered.starts_with("p95 tail attribution"));
        assert!(rendered.contains("queueing"));
    }

    #[test]
    fn attribute_returns_none_without_completions() {
        let log = TraceLog {
            servers: 1,
            end: 1.0,
            requests: vec![RequestTrace {
                id: 0,
                arrival: 0.0,
                start: None,
                completion: None,
                server: None,
                events: Vec::new(),
            }],
            server_events: Vec::new(),
            epochs: Vec::new(),
        };
        assert!(log.attribute(0.95).is_none());
    }

    #[test]
    fn down_windows_feed_attribution_end_to_end() {
        let mut log = TraceLog {
            servers: 2,
            end: 10.0,
            ..TraceLog::default()
        };
        log.server_events.push(ServerEvent {
            at: 1.0,
            server: 0,
            kind: ServerEventKind::Down,
        });
        log.server_events.push(ServerEvent {
            at: 3.0,
            server: 0,
            kind: ServerEventKind::Up,
        });
        log.requests
            .push(request(0, 0.5, 3.5, 4.0, vec![routed(0.5, 0, 1)]));
        let report = log.attribute(0.95).unwrap();
        assert!((report.cohort_mean.downtime - 2.0).abs() < 1e-12);
    }
}
