//! Online (streaming) summary statistics.
//!
//! Welford's algorithm for numerically stable running mean and variance.
//! Used by the online profiler in `rubik-core` and by the metric collectors
//! in `rubik-sim`.

use serde::{Deserialize, Serialize};

/// Numerically stable running mean/variance/min/max accumulator.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct OnlineStats {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl OnlineStats {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Self {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds one observation.
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        let delta2 = x - self.mean;
        self.m2 += delta * delta2;
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean of the observations (0 if empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance of the observations (0 if fewer than 2).
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Standard deviation.
    pub fn stddev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Coefficient of variation (stddev / mean), 0 if the mean is 0.
    pub fn cov(&self) -> f64 {
        if self.mean().abs() < f64::EPSILON {
            0.0
        } else {
            self.stddev() / self.mean()
        }
    }

    /// Smallest observation, or `None` if empty.
    pub fn min(&self) -> Option<f64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest observation, or `None` if empty.
    pub fn max(&self) -> Option<f64> {
        (self.count > 0).then_some(self.max)
    }

    /// Sum of the observations.
    pub fn sum(&self) -> f64 {
        self.mean() * self.count as f64
    }

    /// Merges another accumulator into this one (parallel Welford merge).
    pub fn merge(&mut self, other: &OnlineStats) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        let total = self.count + other.count;
        let delta = other.mean - self.mean;
        let new_mean = self.mean + delta * other.count as f64 / total as f64;
        let new_m2 = self.m2
            + other.m2
            + delta * delta * self.count as f64 * other.count as f64 / total as f64;
        self.count = total;
        self.mean = new_mean;
        self.m2 = new_m2;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

impl Extend<f64> for OnlineStats {
    fn extend<T: IntoIterator<Item = f64>>(&mut self, iter: T) {
        for x in iter {
            self.push(x);
        }
    }
}

impl FromIterator<f64> for OnlineStats {
    fn from_iter<T: IntoIterator<Item = f64>>(iter: T) -> Self {
        let mut s = Self::new();
        s.extend(iter);
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_stats_are_zero() {
        let s = OnlineStats::new();
        assert_eq!(s.count(), 0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance(), 0.0);
        assert!(s.min().is_none());
        assert!(s.max().is_none());
    }

    #[test]
    fn known_mean_and_variance() {
        let s: OnlineStats = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]
            .into_iter()
            .collect();
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert!((s.variance() - 4.0).abs() < 1e-12);
        assert_eq!(s.min(), Some(2.0));
        assert_eq!(s.max(), Some(9.0));
        assert_eq!(s.count(), 8);
    }

    #[test]
    fn merge_matches_sequential() {
        let all: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0 + 20.0).collect();
        let seq: OnlineStats = all.iter().copied().collect();
        let mut a: OnlineStats = all[..40].iter().copied().collect();
        let b: OnlineStats = all[40..].iter().copied().collect();
        a.merge(&b);
        assert_eq!(a.count(), seq.count());
        assert!((a.mean() - seq.mean()).abs() < 1e-9);
        assert!((a.variance() - seq.variance()).abs() < 1e-9);
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a: OnlineStats = [1.0, 2.0, 3.0].into_iter().collect();
        let before = a;
        a.merge(&OnlineStats::new());
        assert_eq!(a, before);

        let mut e = OnlineStats::new();
        e.merge(&before);
        assert_eq!(e, before);
    }

    #[test]
    fn cov_of_constant_series_is_zero() {
        let s: OnlineStats = [3.0; 10].into_iter().collect();
        assert_eq!(s.cov(), 0.0);
    }
}
