//! The event-driven single-core server simulator.
//!
//! One core serves a FIFO queue of requests. A request with compute demand
//! `C` cycles and memory-bound time `M` seconds, served uninterrupted at
//! frequency `f`, takes `C/f + M` seconds. Compute and memory progress are
//! interleaved proportionally, so frequency changes in the middle of a
//! request take effect smoothly and the controller can observe how many
//! compute cycles (ω) the running request has already executed.
//!
//! The simulator invokes the [`DvfsPolicy`] on every arrival, every
//! completion, and on a periodic tick; requested frequency changes take
//! effect after the configured V/F transition latency, during which the core
//! keeps running at the old frequency (paper Sec. 2.1 / Table 2).
//!
//! # Execution model: advance a machine, not replay a trace
//!
//! The engine is [`ServerSim`]: a **resumable, open-loop simulation** that is
//! fed arrivals as they happen ([`ServerSim::offer`]) and advanced one event
//! at a time ([`ServerSim::step`]). Callers that do not know the future —
//! a cluster load balancer, a live-traffic driver, an interactive debugger —
//! interleave `offer` and `step` freely; [`ServerSim::next_event_time`]
//! exposes the time of the next pending event so many `ServerSim`s can be
//! multiplexed through one event loop (see `rubik-cluster`).
//!
//! Each [`step`](ServerSim::step) processes exactly one [`SimEvent`]. Events
//! that fall on the same instant are handled in a fixed round order —
//! V/F transition, completion, arrivals (one per step), tick — which is the
//! order the closed-loop [`Server::run`] has always used; `Server::run` is
//! now a thin wrapper that offers the whole trace up front,
//! [`close`](ServerSim::close)s the stream, and steps to completion, and is
//! **bitwise-identical** to the pre-`ServerSim` implementation (pinned by
//! the golden stdout fixtures in `rubik-bench` and the step-vs-run
//! equivalence suites).
//!
//! While a `ServerSim` is *open*, more arrivals may still be offered, so the
//! periodic policy tick keeps firing even when the server is momentarily
//! idle — exactly as the closed-loop run ticks through idle gaps in the
//! middle of a trace. Once [`close`](ServerSim::close)d, ticks stop when no
//! admitted work remains, which is how a run ends.
//!
//! # Scratch-state snapshots
//!
//! Policies receive the [`ServerState`] by reference at every decision
//! point. The simulator owns **one** scratch `ServerState` per run and
//! refreshes it in place before each callback: `queued` is a
//! `clear()`-and-`extend()` of a retained `Vec`, so after the queue's
//! high-water mark is reached the event loop performs **zero heap
//! allocations per event** for policy snapshots. Policies must therefore
//! treat the state as valid only for the duration of the callback (the
//! borrow rules already enforce this — `ServerState` is passed as `&`), and
//! clone it if they need to retain history.

use crate::config::{IdleMode, SimConfig};
use crate::freq::Freq;
use crate::policy::{DvfsPolicy, InServiceView, PolicyDecision, QueuedView, ServerState};
use crate::request::{RequestRecord, RequestSpec, Trace};
use crate::result::{CoreActivity, RunResult, Segment};
use std::collections::VecDeque;

/// Tolerance used to batch events that occur at "the same" instant.
const TIME_EPS: f64 = 1e-12;

/// The single-core server simulator (closed-loop entry point).
///
/// `Server` is stateless across runs: [`Server::run`] consumes a trace and a
/// policy and produces a [`RunResult`]. This makes it cheap to sweep loads,
/// policies, and seeds from the benchmark harness. It is a thin wrapper over
/// [`ServerSim`], the resumable open-loop engine.
#[derive(Debug, Clone, Default)]
pub struct Server {
    config: SimConfig,
}

/// One simulation event, as returned by [`ServerSim::step`].
///
/// Events that fall on the same instant are delivered in this order:
/// [`FreqTransition`](SimEvent::FreqTransition), then
/// [`Completion`](SimEvent::Completion), then each
/// [`Arrival`](SimEvent::Arrival), then [`Tick`](SimEvent::Tick).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SimEvent {
    /// A previously requested V/F transition took effect; the core now runs
    /// at the contained frequency.
    FreqTransition(Freq),
    /// The request in service completed; the record carries its timing.
    Completion(RequestRecord),
    /// An offered request entered the server: it started service if the core
    /// was free, otherwise it joined the FIFO queue.
    Arrival {
        /// Identifier of the arriving request.
        id: u64,
    },
    /// The periodic policy tick fired.
    Tick,
}

#[derive(Debug, Clone, Copy)]
struct Running {
    spec: RequestSpec,
    start: f64,
    /// Fraction of the request's work completed, in `[0, 1]`.
    progress: f64,
    /// Remaining core wake-up time before progress accrues (deep sleep only).
    wakeup_remaining: f64,
    queue_len_at_arrival: usize,
}

/// Position inside the current event round. Events batched on one instant
/// are processed in `Transition → Completion → Arrivals → Tick` order;
/// `Advance` means the round is over and the clock must move to the next
/// event time before anything else happens.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum Phase {
    Advance,
    Transition,
    Completion,
    Arrivals,
    Tick,
}

/// A resumable, open-loop single-core simulation.
///
/// Unlike [`Server::run`], which replays a complete [`Trace`], a `ServerSim`
/// is *advanced*: arrivals are [`offer`](ServerSim::offer)ed as the caller
/// learns about them, and the machine is moved forward one [`SimEvent`] at a
/// time with [`step`](ServerSim::step) (or in bulk with
/// [`drain_until`](ServerSim::drain_until)). [`finish`](ServerSim::finish)
/// consumes the simulation and returns the same [`RunResult`] a closed-loop
/// run would have produced.
///
/// The policy type parameter defaults to `Box<dyn DvfsPolicy>`; `&mut dyn
/// DvfsPolicy` and any concrete policy work too (see the forwarding impls in
/// [`crate::policy`]).
///
/// # Example
///
/// ```
/// use rubik_sim::{FixedFrequencyPolicy, RequestSpec, ServerSim, SimConfig, SimEvent};
///
/// let config = SimConfig::default();
/// let policy = FixedFrequencyPolicy::new(config.dvfs.nominal());
/// let mut sim = ServerSim::new(config, policy);
///
/// // Arrivals are offered as they happen — the future is not pre-known.
/// sim.offer(RequestSpec::new(0, 0.0, 1.2e6, 0.0));
/// assert_eq!(sim.next_event_time(), Some(0.0));
/// assert!(matches!(sim.step(), Some(SimEvent::Arrival { id: 0 })));
///
/// // Step to the completion, then close the stream and wrap up.
/// sim.offer(RequestSpec::new(1, 1e-3, 1.2e6, 0.0));
/// sim.close();
/// let done = sim.drain_until(f64::INFINITY);
/// assert!(done >= 3); // completion, second arrival, second completion
/// let result = sim.finish();
/// assert_eq!(result.records().len(), 2);
/// ```
pub struct ServerSim<P: DvfsPolicy = Box<dyn DvfsPolicy>> {
    config: SimConfig,
    policy: P,
    now: f64,
    /// While open, more arrivals may be offered and the periodic tick keeps
    /// firing even when no admitted work remains.
    open: bool,
    /// Offered requests that have not yet been admitted (arrival time still
    /// in the future, or pending in the current round).
    arrivals: VecDeque<RequestSpec>,
    queue: VecDeque<(RequestSpec, usize)>, // (spec, queue length at arrival)
    running: Option<Running>,
    current_freq: Freq,
    target_freq: Freq,
    /// Highest frequency the core may run at, imposed externally via
    /// [`ServerSim::retarget`] (fleet power capping). `None` = uncapped.
    freq_ceiling: Option<Freq>,
    pending_transition: Option<(Freq, f64)>,
    next_tick: f64,
    asleep: bool,
    /// Whether the server is down ([`ServerSim::fail`]): no service, no
    /// ticks, no policy callbacks; arrivals still queue and downtime is
    /// charged at sleep power.
    down: bool,
    /// Multiplier applied to every service time (straggler degradation);
    /// `1.0` is bitwise-neutral.
    slowdown: f64,
    /// A frequency the core is pinned at (stuck voltage regulator): policy
    /// decisions and ceilings are ignored until cleared.
    stuck_freq: Option<Freq>,
    /// Accumulated downtime from completed down intervals.
    downtime: f64,
    /// Start of the current down interval (meaningful only while `down`).
    down_since: f64,
    phase: Phase,
    records: Vec<RequestRecord>,
    segments: Vec<Segment>,
    /// Reusable policy-visible snapshot; refreshed in place before every
    /// policy callback so the event loop allocates nothing per event.
    scratch: ServerState,
}

impl<P: DvfsPolicy> std::fmt::Debug for ServerSim<P> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServerSim")
            .field("now", &self.now)
            .field("open", &self.open)
            .field("policy", &self.policy.name())
            .field("offered", &self.arrivals.len())
            .field("queued", &self.queue.len())
            .field("running", &self.running.is_some())
            .field("current_freq", &self.current_freq)
            .field("completed", &self.records.len())
            .finish()
    }
}

impl<P: DvfsPolicy> ServerSim<P> {
    /// Creates an **open** simulation at time 0. The starting frequency is
    /// the policy's idle frequency, or the nominal level if the policy has
    /// no preference.
    pub fn new(config: SimConfig, policy: P) -> Self {
        let start_freq = policy
            .idle_frequency()
            .unwrap_or_else(|| config.dvfs.nominal());
        let next_tick = config.tick_interval;
        let asleep = matches!(config.idle_mode, IdleMode::Sleep { .. });
        Self {
            config,
            policy,
            now: 0.0,
            open: true,
            arrivals: VecDeque::new(),
            queue: VecDeque::new(),
            running: None,
            current_freq: start_freq,
            target_freq: start_freq,
            freq_ceiling: None,
            pending_transition: None,
            next_tick,
            asleep,
            down: false,
            slowdown: 1.0,
            stuck_freq: None,
            downtime: 0.0,
            down_since: 0.0,
            phase: Phase::Advance,
            records: Vec::new(),
            segments: Vec::new(),
            scratch: ServerState {
                now: 0.0,
                current_freq: start_freq,
                target_freq: start_freq,
                in_service: None,
                queued: Vec::new(),
            },
        }
    }

    /// The simulation configuration.
    pub fn config(&self) -> &SimConfig {
        &self.config
    }

    /// Current simulation time (the time of the most recently processed
    /// event).
    pub fn now(&self) -> f64 {
        self.now
    }

    /// Whether the arrival stream is still open (see [`ServerSim::close`]).
    pub fn is_open(&self) -> bool {
        self.open
    }

    /// The DVFS policy driving this simulation.
    pub fn policy(&self) -> &P {
        &self.policy
    }

    /// Mutable access to the policy (e.g. to seed a profile mid-run).
    pub fn policy_mut(&mut self) -> &mut P {
        &mut self.policy
    }

    /// Frequency currently in effect.
    pub fn current_freq(&self) -> Freq {
        self.current_freq
    }

    /// Frequency most recently requested by the policy (a V/F transition may
    /// still be in flight).
    pub fn target_freq(&self) -> Freq {
        self.target_freq
    }

    /// Number of requests admitted into the server: queued plus in service.
    pub fn pending_requests(&self) -> usize {
        self.queue.len() + usize::from(self.running.is_some())
    }

    /// Number of requests anywhere in the system: offered-but-not-admitted,
    /// queued, and in service. This is what a load balancer should count —
    /// an offered request is committed to this server even before its
    /// arrival event has been processed.
    pub fn in_flight(&self) -> usize {
        self.arrivals.len() + self.pending_requests()
    }

    /// Whether the server has no admitted work (it may still hold offered
    /// future arrivals).
    pub fn is_idle(&self) -> bool {
        self.running.is_none() && self.queue.is_empty()
    }

    /// Records of the requests completed so far, in completion order.
    pub fn records(&self) -> &[RequestRecord] {
        &self.records
    }

    /// The frequency/activity timeline accumulated so far. Segments cover
    /// `[0, now()]`; the span since the last processed event is not yet
    /// materialized — combine with [`ServerSim::current_activity`] and
    /// [`ServerSim::current_freq`] to account for it (the fleet power meter
    /// in `rubik-cluster` does exactly this).
    pub fn segments(&self) -> &[Segment] {
        &self.segments
    }

    /// What the core is doing right now (busy, clock-gated idle, or deep
    /// sleep) — the activity the timeline will record from [`ServerSim::now`]
    /// until the next event.
    pub fn current_activity(&self) -> CoreActivity {
        if self.down {
            CoreActivity::Sleep
        } else if self.running.is_some() {
            CoreActivity::Busy
        } else if self.asleep {
            CoreActivity::Sleep
        } else {
            CoreActivity::Idle
        }
    }

    /// Number of admitted requests waiting in the FIFO queue (excluding the
    /// one in service). These are the requests [`ServerSim::steal_queued`]
    /// can remove.
    pub fn queued_len(&self) -> usize {
        self.queue.len()
    }

    /// The externally imposed frequency ceiling, if any (see
    /// [`ServerSim::retarget`]).
    pub fn freq_ceiling(&self) -> Option<Freq> {
        self.freq_ceiling
    }

    /// Imposes (or lifts, with `None`) an external frequency ceiling: every
    /// frequency the policy requests from now on is clamped to the highest
    /// DVFS level at or below the ceiling, and if the core's current target
    /// exceeds it a transition down is initiated immediately (subject to the
    /// usual V/F transition latency). Fleet-level power capping in
    /// `rubik-cluster` drives this; a simulation that is never retargeted is
    /// bit-for-bit identical to one without the surface.
    ///
    /// The ceiling is snapped down to an available DVFS level (never below
    /// the domain's minimum).
    pub fn retarget(&mut self, ceiling: Option<Freq>) {
        let ceiling = ceiling.map(|c| self.config.dvfs.floor_level(c.hz()));
        self.freq_ceiling = ceiling;
        // A stuck regulator ignores the ceiling until it unsticks; the
        // ceiling is recorded and re-applied by `stick_freq(None)`.
        if self.stuck_freq.is_some() {
            return;
        }
        if let Some(c) = ceiling {
            if self.target_freq > c {
                self.request_frequency(c);
            }
        }
    }

    /// Removes and returns the most recently queued request (the back of the
    /// FIFO queue), or `None` if nothing is queued. The request in service is
    /// never stolen. The policy is not notified; it observes the shorter
    /// queue at its next callback.
    ///
    /// This is one half of queue migration (`rubik-cluster`): a rebalancer
    /// steals from a backlogged server's queue and [`ServerSim::inject`]s
    /// into an underloaded one, preserving the request's original arrival
    /// time so end-to-end latency accounting spans both servers.
    pub fn steal_queued(&mut self) -> Option<RequestSpec> {
        self.queue.pop_back().map(|(spec, _)| spec)
    }

    /// Removes a specific queued request by id, or `None` if it is not in
    /// the FIFO queue (in service, already completed, or never admitted).
    /// The request in service is never removed. Like
    /// [`steal_queued`](ServerSim::steal_queued), the policy is not
    /// notified.
    ///
    /// The request-timeout layer in `rubik-cluster` uses this to pull a
    /// timed-out request out of a backlogged (or down) server so a retry can
    /// be routed elsewhere.
    pub fn remove_queued(&mut self, id: u64) -> Option<RequestSpec> {
        let pos = self.queue.iter().position(|(spec, _)| spec.id == id)?;
        self.queue.remove(pos).map(|(spec, _)| spec)
    }

    /// Cancels a specific request by id at time `at`, wherever it sits: a
    /// queued copy is removed from the FIFO queue (exactly like
    /// [`remove_queued`](ServerSim::remove_queued)); a copy **in service**
    /// is aborted mid-request — the clock advances to `at`, the partial
    /// work is charged to the busy timeline, **no completion record is
    /// emitted**, and the head of the queue starts service immediately
    /// (an aborted core pays no sleep wake-up, like
    /// [`recover`](ServerSim::recover)). Returns the cancelled spec, or
    /// `None` — with **zero state change** — when the id is not on this
    /// server, so a driver that never cancels is bitwise-identical to one
    /// without the surface. The policy is not notified; it observes the
    /// freed core at its next callback.
    ///
    /// Hedged (speculatively duplicated) requests in `rubik-cluster` use
    /// this: when one copy completes, the loser is cancelled wherever it
    /// is.
    ///
    /// # Panics
    ///
    /// Panics — only when the id is in service, since a queued removal
    /// does not touch the clock — if `at` is in the past or an event is
    /// pending strictly before `at`.
    pub fn cancel(&mut self, at: f64, id: u64) -> Option<RequestSpec> {
        if let Some(pos) = self.queue.iter().position(|(spec, _)| spec.id == id) {
            return self.queue.remove(pos).map(|(spec, _)| spec);
        }
        if self.running.as_ref().is_none_or(|r| r.spec.id != id) {
            return None;
        }
        assert!(
            at >= self.now,
            "cancellation at {at} is in the past (now = {})",
            self.now
        );
        assert!(
            self.next_event_time().is_none_or(|te| te >= at),
            "cannot cancel past a pending event"
        );
        self.advance_to(at);
        let running = self.running.take().expect("in-service id checked above");
        if let Some((spec, qlen)) = self.queue.pop_front() {
            self.running = Some(Running {
                spec,
                start: self.now,
                progress: 0.0,
                wakeup_remaining: 0.0,
                queue_len_at_arrival: qlen,
            });
        } else if matches!(self.config.idle_mode, IdleMode::Sleep { .. }) {
            self.asleep = true;
        }
        Some(running.spec)
    }

    /// Whether the server is down (see [`ServerSim::fail`]).
    pub fn is_down(&self) -> bool {
        self.down
    }

    /// Total downtime accumulated so far, including the current down
    /// interval (up to [`now`](ServerSim::now)) if the server is still down.
    pub fn downtime(&self) -> f64 {
        self.downtime
            + if self.down {
                self.now - self.down_since
            } else {
                0.0
            }
    }

    /// Crashes the server at time `at`: the clock advances to `at`, the
    /// in-service request (if any) is **returned to the caller** — lost or
    /// salvaged per the caller's policy — and the server enters the down
    /// state. While down the core serves nothing, the periodic policy tick
    /// is suppressed, and the timeline records deep sleep (downtime is
    /// charged at sleep power). Arrivals are still admitted into the FIFO
    /// queue — a failure-blind router keeps routing work here, which is
    /// exactly the pathology timeouts and health-aware routing repair — and
    /// queued work can be drained via [`steal_queued`](ServerSim::steal_queued)
    /// or [`remove_queued`](ServerSim::remove_queued). A pending V/F
    /// transition still takes effect (the regulator finishes its ramp).
    ///
    /// # Panics
    ///
    /// Panics if the server is already down, if `at` is in the past, or if
    /// an event is pending strictly before `at`.
    pub fn fail(&mut self, at: f64) -> Option<RequestSpec> {
        assert!(!self.down, "fail() on a server that is already down");
        assert!(
            at >= self.now,
            "failure at {at} is in the past (now = {})",
            self.now
        );
        assert!(
            self.next_event_time().is_none_or(|te| te >= at),
            "cannot fail past a pending event"
        );
        self.advance_to(at);
        self.down = true;
        self.down_since = at;
        self.asleep = false;
        self.running.take().map(|r| r.spec)
    }

    /// Brings a down server back at time `at`: downtime accounting for the
    /// interval is closed out, the periodic tick is realigned to the next
    /// multiple after `at`, and the head of the FIFO queue (work that
    /// accumulated or survived the outage) starts service immediately — a
    /// rebooted core pays no sleep wake-up. The policy is not invoked; it
    /// observes the post-recovery state at its next callback.
    ///
    /// # Panics
    ///
    /// Panics if the server is not down, if `at` is in the past, or if an
    /// event is pending strictly before `at`.
    pub fn recover(&mut self, at: f64) {
        assert!(self.down, "recover() on a server that is not down");
        assert!(
            at >= self.now,
            "recovery at {at} is in the past (now = {})",
            self.now
        );
        assert!(
            self.next_event_time().is_none_or(|te| te >= at),
            "cannot recover past a pending event"
        );
        self.advance_to(at);
        self.down = false;
        self.downtime += at - self.down_since;
        while self.next_tick <= self.now + TIME_EPS {
            self.next_tick += self.config.tick_interval;
        }
        if let Some((spec, qlen)) = self.queue.pop_front() {
            self.running = Some(Running {
                spec,
                start: self.now,
                progress: 0.0,
                wakeup_remaining: 0.0,
                queue_len_at_arrival: qlen,
            });
        } else if matches!(self.config.idle_mode, IdleMode::Sleep { .. }) {
            self.asleep = true;
        }
    }

    /// The straggler factor currently applied to service times.
    pub fn slowdown(&self) -> f64 {
        self.slowdown
    }

    /// Sets the straggler factor: every service time is multiplied by
    /// `factor` from now on (`1.0` restores full speed and is bitwise
    /// neutral). A request in the middle of service is affected
    /// proportionally via the progress-fraction model, exactly like a
    /// mid-request frequency change.
    ///
    /// # Panics
    ///
    /// Panics if `factor` is not finite and positive.
    pub fn set_slowdown(&mut self, factor: f64) {
        assert!(
            factor.is_finite() && factor > 0.0,
            "slowdown factor must be finite and positive, got {factor}"
        );
        self.slowdown = factor;
    }

    /// The frequency the core is pinned at, if any (see
    /// [`ServerSim::stick_freq`]).
    pub fn stuck_freq(&self) -> Option<Freq> {
        self.stuck_freq
    }

    /// Pins the core at a DVFS level (a stuck voltage regulator): the core
    /// transitions to `level` (snapped down to an available level, subject
    /// to the usual V/F latency) and ignores every subsequent policy
    /// decision and external ceiling until `stick_freq(None)` clears the
    /// pin, at which point the recorded ceiling — if any — is re-applied.
    pub fn stick_freq(&mut self, level: Option<Freq>) {
        match level {
            Some(f) => {
                let f = self.config.dvfs.floor_level(f.hz());
                self.stuck_freq = Some(f);
                self.request_frequency(f);
            }
            None => {
                self.stuck_freq = None;
                if let Some(c) = self.freq_ceiling {
                    if self.target_freq > c {
                        self.request_frequency(c);
                    }
                }
            }
        }
    }

    /// Admits a request at time `at`, bypassing the offered-arrivals stream:
    /// the clock advances to `at` (extending the timeline, like
    /// [`coast_to`](ServerSim::coast_to)) and the request starts service if
    /// the core is free (paying the sleep wake-up if applicable) or joins
    /// the back of the FIFO queue. The spec's `arrival` is kept verbatim —
    /// for a migrated request it lies in the past, and the completion
    /// record's latency charges the time spent queued on the donor server.
    /// The policy sees a normal arrival callback.
    ///
    /// Unlike [`ServerSim::offer`], injection is allowed on a
    /// [`close`](ServerSim::close)d simulation: migration legitimately
    /// rebalances the backlog while a fleet drains.
    ///
    /// # Panics
    ///
    /// Panics if `at` is in the simulation's past, before the request's
    /// arrival, or would skip over a pending event (the caller — the
    /// cluster driver — processes every event strictly before `at` first).
    pub fn inject(&mut self, at: f64, spec: RequestSpec) {
        assert!(
            at >= self.now,
            "injection at {at} is in the past (now = {})",
            self.now
        );
        assert!(
            spec.arrival <= at,
            "cannot inject a request before it arrived ({} > {at})",
            spec.arrival
        );
        assert!(
            self.next_event_time().is_none_or(|te| te >= at),
            "cannot inject past a pending event"
        );
        self.advance_to(at);
        self.admit(spec);
    }

    /// Offers a request to the server: it will arrive (start service or
    /// queue) when the simulation reaches `spec.arrival`.
    ///
    /// # Panics
    ///
    /// Panics if the stream has been [`close`](ServerSim::close)d, if the
    /// arrival time lies in the simulation's past, or if it precedes a
    /// previously offered arrival (offers must be time-ordered).
    pub fn offer(&mut self, spec: RequestSpec) {
        assert!(self.open, "cannot offer a request to a closed ServerSim");
        assert!(
            spec.arrival >= self.now,
            "offered arrival at {} is in the past (now = {})",
            spec.arrival,
            self.now
        );
        if let Some(last) = self.arrivals.back() {
            assert!(
                spec.arrival >= last.arrival,
                "offered arrivals must be time-ordered: {} after {}",
                spec.arrival,
                last.arrival
            );
        }
        self.arrivals.push_back(spec);
    }

    /// Offers every request of an iterator (time-ordered, e.g. a
    /// [`Trace`]'s requests), reserving capacity up front.
    pub fn offer_all<I: IntoIterator<Item = RequestSpec>>(&mut self, specs: I) {
        let iter = specs.into_iter();
        let (hint, _) = iter.size_hint();
        self.arrivals.reserve(hint);
        self.records.reserve(hint);
        for spec in iter {
            self.offer(spec);
        }
    }

    /// Closes the arrival stream: no further [`offer`](ServerSim::offer)s
    /// are accepted, and once the admitted work drains the periodic tick
    /// stops firing, so [`step`](ServerSim::step) eventually returns `None`.
    pub fn close(&mut self) {
        self.open = false;
    }

    /// The time of the next pending event, or `None` when a closed
    /// simulation has nothing left to do.
    ///
    /// An **open** simulation always has a next event (at minimum the
    /// periodic tick), so an external driver must bound how far it drains —
    /// see [`ServerSim::drain_until`].
    pub fn next_event_time(&self) -> Option<f64> {
        if self.due_in_round() {
            return Some(self.now);
        }
        self.raw_next_event_time()
    }

    /// Advances the simulation by exactly one event and returns it, or
    /// `None` when a closed simulation has nothing left to do.
    pub fn step(&mut self) -> Option<SimEvent> {
        loop {
            match self.phase {
                Phase::Advance => {
                    let t = self.raw_next_event_time()?;
                    self.advance_to(t);
                    self.phase = Phase::Transition;
                }
                Phase::Transition => {
                    self.phase = Phase::Completion;
                    if let Some((f, t)) = self.pending_transition {
                        if t <= self.now + TIME_EPS {
                            self.current_freq = f;
                            self.pending_transition = None;
                            return Some(SimEvent::FreqTransition(f));
                        }
                    }
                }
                Phase::Completion => {
                    self.phase = Phase::Arrivals;
                    if let Some(t) = self.completion_time() {
                        if t <= self.now + TIME_EPS {
                            let record = self.complete_running();
                            return Some(SimEvent::Completion(record));
                        }
                    }
                }
                Phase::Arrivals => {
                    if self
                        .arrivals
                        .front()
                        .is_some_and(|r| r.arrival <= self.now + TIME_EPS)
                    {
                        let id = self.admit_arrival();
                        return Some(SimEvent::Arrival { id });
                    }
                    self.phase = Phase::Tick;
                }
                Phase::Tick => {
                    self.phase = Phase::Advance;
                    if self.next_tick <= self.now + TIME_EPS {
                        self.next_tick += self.config.tick_interval;
                        self.refresh_snapshot();
                        let decision = self.policy.on_tick(&self.scratch);
                        self.apply_decision(decision);
                        return Some(SimEvent::Tick);
                    }
                }
            }
        }
    }

    /// Processes every event up to and including time `t` and returns how
    /// many were processed. The clock is left at the last processed event;
    /// it does not advance to `t` if nothing happens there.
    pub fn drain_until(&mut self, t: f64) -> usize {
        let mut processed = 0;
        while self.next_event_time().is_some_and(|te| te <= t) {
            let stepped = self.step();
            debug_assert!(stepped.is_some(), "a due event must produce a SimEvent");
            processed += 1;
        }
        processed
    }

    /// Advances the clock to `t` without processing any events, extending
    /// the idle/sleep timeline at the current frequency. Fleet drivers use
    /// this to align every server's end time so idle power is charged
    /// through the whole run, not just to each server's last event. A no-op
    /// if `t` is in the past.
    ///
    /// # Panics
    ///
    /// Panics if an event is due at or before `t` — coasting must not skip
    /// simulation work.
    pub fn coast_to(&mut self, t: f64) {
        assert!(
            self.next_event_time().is_none_or(|te| te > t),
            "cannot coast past a pending event"
        );
        self.advance_to(t);
    }

    /// Runs a **closed** simulation to completion (every offered request
    /// served, every trailing event processed).
    ///
    /// # Panics
    ///
    /// Panics if the stream is still open — an open simulation ticks
    /// forever, so running it to completion would never return.
    pub fn run_to_completion(&mut self) {
        assert!(
            !self.open,
            "close() the arrival stream before running to completion"
        );
        while self.step().is_some() {}
    }

    /// Consumes the simulation and returns the per-request records and the
    /// frequency/activity timeline accumulated so far.
    pub fn finish(self) -> RunResult {
        let end = self.now;
        RunResult::new(self.records, self.segments, end)
    }

    /// Refreshes the scratch [`ServerState`] from the live simulation state.
    /// The `queued` vector is cleared and refilled, reusing its capacity; no
    /// allocation occurs once the queue's high-water mark has been reached.
    fn refresh_snapshot(&mut self) {
        let scratch = &mut self.scratch;
        scratch.now = self.now;
        scratch.current_freq = self.current_freq;
        scratch.target_freq = self.target_freq;
        scratch.in_service = self.running.as_ref().map(|r| InServiceView {
            id: r.spec.id,
            arrival: r.spec.arrival,
            elapsed_compute_cycles: r.progress * r.spec.compute_cycles,
            elapsed_membound_time: r.progress * r.spec.membound_time,
            oracle_compute_cycles: r.spec.compute_cycles,
            oracle_membound_time: r.spec.membound_time,
            class: r.spec.class,
        });
        scratch.queued.clear();
        scratch
            .queued
            .extend(self.queue.iter().map(|(spec, _)| QueuedView {
                id: spec.id,
                arrival: spec.arrival,
                oracle_compute_cycles: spec.compute_cycles,
                oracle_membound_time: spec.membound_time,
                class: spec.class,
            }));
    }

    fn completion_time(&self) -> Option<f64> {
        let r = self.running.as_ref()?;
        let total = r.spec.service_time_at(self.current_freq) * self.slowdown;
        let remaining = (1.0 - r.progress).max(0.0) * total + r.wakeup_remaining;
        Some(self.now + remaining)
    }

    /// The earliest event visible from the top of a round: next admission,
    /// completion, pending transition, and — while more work exists or may
    /// yet be offered — the periodic tick.
    fn raw_next_event_time(&self) -> Option<f64> {
        let mut next: Option<f64> = None;
        let mut consider = |t: Option<f64>| {
            if let Some(t) = t {
                next = Some(match next {
                    Some(n) => n.min(t),
                    None => t,
                });
            }
        };

        consider(self.arrivals.front().map(|r| r.arrival.max(self.now)));
        consider(self.completion_time());
        consider(self.pending_transition.map(|(_, t)| t));

        // Ticks only matter while there is or may yet be work; without this
        // a closed simulation would tick forever after the last completion.
        // A down server does not tick at all.
        let more_work = self.open
            || !self.arrivals.is_empty()
            || self.running.is_some()
            || !self.queue.is_empty();
        if more_work && !self.down {
            consider(Some(self.next_tick.max(self.now)));
        }
        next
    }

    /// Whether an event is still due in the current round (at the current
    /// instant), considering only the phases not yet passed.
    fn due_in_round(&self) -> bool {
        if self.phase == Phase::Advance {
            return false;
        }
        let due = |t: f64| t <= self.now + TIME_EPS;
        (self.phase <= Phase::Transition && self.pending_transition.is_some_and(|(_, t)| due(t)))
            || (self.phase <= Phase::Completion && self.completion_time().is_some_and(due))
            || (self.phase <= Phase::Arrivals
                && self.arrivals.front().is_some_and(|r| due(r.arrival)))
            || (self.phase <= Phase::Tick && !self.down && due(self.next_tick))
    }

    fn advance_to(&mut self, t: f64) {
        let t = t.max(self.now);
        if t > self.now + TIME_EPS {
            let activity = if self.down {
                CoreActivity::Sleep
            } else if self.running.is_some() {
                CoreActivity::Busy
            } else if self.asleep {
                CoreActivity::Sleep
            } else {
                CoreActivity::Idle
            };
            push_segment(&mut self.segments, self.now, t, self.current_freq, activity);

            let slowdown = self.slowdown;
            if let Some(r) = self.running.as_mut() {
                let mut dt = t - self.now;
                if r.wakeup_remaining > 0.0 {
                    let consumed = r.wakeup_remaining.min(dt);
                    r.wakeup_remaining -= consumed;
                    dt -= consumed;
                }
                if dt > 0.0 {
                    let total = r.spec.service_time_at(self.current_freq) * slowdown;
                    if total > 0.0 {
                        r.progress = (r.progress + dt / total).min(1.0);
                    } else {
                        r.progress = 1.0;
                    }
                }
            }
        }
        self.now = t;
    }

    fn complete_running(&mut self) -> RequestRecord {
        let running = self
            .running
            .take()
            .expect("completion without a running request");
        let spec = running.spec;
        let record = RequestRecord {
            id: spec.id,
            arrival: spec.arrival,
            start: running.start,
            completion: self.now,
            compute_cycles: spec.compute_cycles,
            membound_time: spec.membound_time,
            queue_len_at_arrival: running.queue_len_at_arrival,
            class: spec.class,
        };
        self.records.push(record);

        // Start the next queued request, if any.
        if let Some((spec, qlen)) = self.queue.pop_front() {
            self.running = Some(Running {
                spec,
                start: self.now,
                progress: 0.0,
                wakeup_remaining: 0.0,
                queue_len_at_arrival: qlen,
            });
        } else if matches!(self.config.idle_mode, IdleMode::Sleep { .. }) {
            self.asleep = true;
        }

        self.refresh_snapshot();
        let decision = self.policy.on_completion(&self.scratch, &record);
        self.apply_decision(decision);
        record
    }

    fn admit_arrival(&mut self) -> u64 {
        let spec = self
            .arrivals
            .pop_front()
            .expect("admission without an offered request");
        let id = spec.id;
        self.admit(spec);
        id
    }

    /// Starts or queues `spec` right now and runs the policy's arrival
    /// callback — shared by the offered-arrival admission path and
    /// [`ServerSim::inject`].
    fn admit(&mut self, spec: RequestSpec) {
        let pending_before = self.queue.len() + usize::from(self.running.is_some());

        // A down server still accepts work into its queue (a failure-blind
        // router keeps sending it), but serves nothing and consults no
        // policy until it recovers.
        if self.down {
            self.queue.push_back((spec, pending_before));
            return;
        }

        if self.running.is_none() {
            let wakeup = match (self.asleep, self.config.idle_mode) {
                (true, IdleMode::Sleep { wakeup_latency }) => wakeup_latency,
                _ => 0.0,
            };
            self.asleep = false;
            self.running = Some(Running {
                spec,
                start: self.now,
                progress: 0.0,
                wakeup_remaining: wakeup,
                queue_len_at_arrival: pending_before,
            });
        } else {
            self.queue.push_back((spec, pending_before));
        }

        self.refresh_snapshot();
        let decision = self.policy.on_arrival(&self.scratch);
        self.apply_decision(decision);
    }

    fn apply_decision(&mut self, decision: PolicyDecision) {
        let f = match decision {
            PolicyDecision::Keep => return,
            PolicyDecision::SetFrequency(f) => f,
        };
        assert!(
            self.config.dvfs.is_level(f),
            "policy requested {f}, which is not an available DVFS level"
        );
        // A stuck regulator ignores the policy entirely.
        if self.stuck_freq.is_some() {
            return;
        }
        // An external frequency ceiling (fleet power capping) silently clamps
        // whatever the policy asks for.
        let f = match self.freq_ceiling {
            Some(c) if f > c => c,
            _ => f,
        };
        self.request_frequency(f);
    }

    /// Initiates a transition to `f` (already validated/clamped), honouring
    /// the V/F transition latency.
    fn request_frequency(&mut self, f: Freq) {
        if f == self.target_freq {
            return;
        }
        self.target_freq = f;
        let latency = self.config.dvfs.transition_latency();
        if latency <= 0.0 {
            self.current_freq = f;
            self.pending_transition = None;
        } else {
            self.pending_transition = Some((f, self.now + latency));
        }
    }
}

impl Server {
    /// Creates a server with the given configuration.
    pub fn new(config: SimConfig) -> Self {
        Self { config }
    }

    /// The server's configuration.
    pub fn config(&self) -> &SimConfig {
        &self.config
    }

    /// Runs the trace under the given policy and returns the per-request
    /// records and the frequency/activity timeline.
    ///
    /// This is the closed-loop convenience wrapper over [`ServerSim`]: the
    /// whole trace is offered up front, the stream is closed, and the
    /// machine is stepped to completion. The result is bitwise-identical to
    /// offering the same arrivals incrementally as simulated time reaches
    /// them (see the step-vs-run equivalence suite in `tests/`).
    pub fn run(&self, trace: &Trace, policy: &mut dyn DvfsPolicy) -> RunResult {
        let mut sim = ServerSim::new(self.config.clone(), policy);
        sim.offer_all(trace.requests().iter().copied());
        sim.close();
        sim.run_to_completion();
        sim.finish()
    }
}

fn push_segment(
    segments: &mut Vec<Segment>,
    start: f64,
    end: f64,
    freq: Freq,
    activity: CoreActivity,
) {
    if end <= start {
        return;
    }
    if let Some(last) = segments.last_mut() {
        if last.freq == freq && last.activity == activity && (last.end - start).abs() < TIME_EPS {
            last.end = end;
            return;
        }
    }
    segments.push(Segment {
        start,
        end,
        freq,
        activity,
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::freq::DvfsConfig;
    use crate::policy::FixedFrequencyPolicy;

    fn cfg() -> SimConfig {
        SimConfig::paper_simulated()
    }

    fn nominal() -> Freq {
        cfg().dvfs.nominal()
    }

    #[test]
    fn empty_trace_produces_empty_result() {
        let server = Server::new(cfg());
        let mut policy = FixedFrequencyPolicy::new(nominal());
        let result = server.run(&Trace::default(), &mut policy);
        assert!(result.records().is_empty());
        assert!(result.segments().is_empty());
    }

    #[test]
    fn single_request_latency_matches_service_time() {
        // 2.4 M cycles at 2.4 GHz = 1 ms, plus 0.5 ms memory time.
        let trace = Trace::new(vec![RequestSpec::new(0, 0.0, 2.4e6, 0.5e-3)]);
        let server = Server::new(cfg());
        let mut policy = FixedFrequencyPolicy::new(nominal());
        let result = server.run(&trace, &mut policy);
        assert_eq!(result.records().len(), 1);
        assert!((result.records()[0].latency() - 1.5e-3).abs() < 1e-9);
        assert!((result.records()[0].queueing_delay()).abs() < 1e-12);
    }

    #[test]
    fn back_to_back_requests_queue_fifo() {
        // Both arrive at t=0; the second waits for the first.
        let trace = Trace::new(vec![
            RequestSpec::new(0, 0.0, 2.4e6, 0.0),
            RequestSpec::new(1, 0.0, 2.4e6, 0.0),
        ]);
        let server = Server::new(cfg());
        let mut policy = FixedFrequencyPolicy::new(nominal());
        let result = server.run(&trace, &mut policy);
        assert_eq!(result.records().len(), 2);
        let r0 = &result.records()[0];
        let r1 = &result.records()[1];
        assert_eq!(r0.id, 0);
        assert_eq!(r1.id, 1);
        assert!((r0.latency() - 1e-3).abs() < 1e-9);
        assert!((r1.latency() - 2e-3).abs() < 1e-9);
        assert!((r1.queueing_delay() - 1e-3).abs() < 1e-9);
        assert_eq!(r0.queue_len_at_arrival, 0);
        assert_eq!(r1.queue_len_at_arrival, 1);
    }

    #[test]
    fn idle_gaps_are_recorded_as_idle_segments() {
        let trace = Trace::new(vec![
            RequestSpec::new(0, 0.0, 2.4e6, 0.0),
            RequestSpec::new(1, 0.01, 2.4e6, 0.0),
        ]);
        let server = Server::new(cfg());
        let mut policy = FixedFrequencyPolicy::new(nominal());
        let result = server.run(&trace, &mut policy);
        let res = result.freq_residency();
        assert!((res.busy_time() - 2e-3).abs() < 1e-9);
        assert!((res.idle_time() - (0.01 - 1e-3)).abs() < 1e-9);
        assert!(res.sleep < 1e-12);
    }

    #[test]
    fn sleep_mode_records_sleep_and_delays_wakeup() {
        let config = cfg().with_idle_mode(IdleMode::Sleep {
            wakeup_latency: 100e-6,
        });
        let trace = Trace::new(vec![
            RequestSpec::new(0, 0.0, 2.4e6, 0.0),
            RequestSpec::new(1, 0.01, 2.4e6, 0.0),
        ]);
        let server = Server::new(config);
        let mut policy = FixedFrequencyPolicy::new(nominal());
        let result = server.run(&trace, &mut policy);
        // Second request pays the 100 µs wake-up.
        assert!((result.records()[1].latency() - (1e-3 + 100e-6)).abs() < 1e-9);
        let res = result.freq_residency();
        assert!(res.sleep > 0.0);
        assert!(res.idle_time() < 1e-12);
    }

    #[test]
    fn lower_frequency_stretches_only_compute() {
        let trace = Trace::new(vec![RequestSpec::new(0, 0.0, 2.4e6, 1e-3)]);
        let server = Server::new(cfg());
        let mut fast = FixedFrequencyPolicy::new(Freq::from_mhz(2400));
        let mut slow = FixedFrequencyPolicy::new(Freq::from_mhz(1200));
        let lat_fast = server.run(&trace, &mut fast).records()[0].latency();
        let lat_slow = server.run(&trace, &mut slow).records()[0].latency();
        assert!((lat_fast - 2e-3).abs() < 1e-9);
        assert!((lat_slow - 3e-3).abs() < 1e-9);
    }

    #[test]
    fn frequency_transition_latency_delays_effect() {
        // A policy that asks for max frequency on the first arrival. With a
        // huge transition latency the request still completes at the starting
        // frequency.
        struct BoostOnArrival;
        impl DvfsPolicy for BoostOnArrival {
            fn name(&self) -> &str {
                "boost"
            }
            fn on_arrival(&mut self, _state: &ServerState) -> PolicyDecision {
                PolicyDecision::SetFrequency(Freq::from_mhz(3400))
            }
            fn on_completion(&mut self, _s: &ServerState, _r: &RequestRecord) -> PolicyDecision {
                PolicyDecision::Keep
            }
            fn idle_frequency(&self) -> Option<Freq> {
                Some(Freq::from_mhz(800))
            }
        }

        let trace = Trace::new(vec![RequestSpec::new(0, 0.0, 0.8e6, 0.0)]); // 1 ms at 0.8 GHz
        let slow_transition = SimConfig::default()
            .with_dvfs(DvfsConfig::haswell_like().with_transition_latency(10.0));
        let server = Server::new(slow_transition);
        let lat = server.run(&trace, &mut BoostOnArrival).records()[0].latency();
        assert!((lat - 1e-3).abs() < 1e-9);

        // With an instantaneous transition the request runs at 3.4 GHz.
        let fast_transition =
            SimConfig::default().with_dvfs(DvfsConfig::haswell_like().with_transition_latency(0.0));
        let server = Server::new(fast_transition);
        let lat = server.run(&trace, &mut BoostOnArrival).records()[0].latency();
        assert!((lat - 0.8e6 / 3.4e9).abs() < 1e-9);
    }

    #[test]
    fn mid_request_frequency_change_blends_progress() {
        // Request needs 2.4e6 cycles. It starts at 0.8 GHz; after 1 ms a
        // second (zero-work) arrival triggers a boost to 2.4 GHz (instant
        // transitions). In the first 1 ms it completes 0.8e6 cycles; the
        // remaining 1.6e6 cycles take 1/1.5 ms at 2.4 GHz.
        struct BoostOnSecondArrival {
            seen: usize,
        }
        impl DvfsPolicy for BoostOnSecondArrival {
            fn name(&self) -> &str {
                "boost-second"
            }
            fn on_arrival(&mut self, _state: &ServerState) -> PolicyDecision {
                self.seen += 1;
                if self.seen == 2 {
                    PolicyDecision::SetFrequency(Freq::from_mhz(2400))
                } else {
                    PolicyDecision::Keep
                }
            }
            fn on_completion(&mut self, _s: &ServerState, _r: &RequestRecord) -> PolicyDecision {
                PolicyDecision::Keep
            }
            fn idle_frequency(&self) -> Option<Freq> {
                Some(Freq::from_mhz(800))
            }
        }

        let trace = Trace::new(vec![
            RequestSpec::new(0, 0.0, 2.4e6, 0.0),
            RequestSpec::new(1, 1e-3, 0.0, 0.0),
        ]);
        let config =
            SimConfig::default().with_dvfs(DvfsConfig::haswell_like().with_transition_latency(0.0));
        let server = Server::new(config);
        let result = server.run(&trace, &mut BoostOnSecondArrival { seen: 0 });
        let r0 = result.records().iter().find(|r| r.id == 0).unwrap();
        let expected = 1e-3 + 1.6e6 / 2.4e9;
        assert!(
            (r0.latency() - expected).abs() < 1e-8,
            "latency {} vs expected {}",
            r0.latency(),
            expected
        );
    }

    #[test]
    fn segments_cover_the_run_without_gaps() {
        let trace = Trace::new(vec![
            RequestSpec::new(0, 0.0, 2.4e6, 0.0),
            RequestSpec::new(1, 0.003, 2.4e6, 0.0),
            RequestSpec::new(2, 0.004, 2.4e6, 0.0),
        ]);
        let server = Server::new(cfg());
        let mut policy = FixedFrequencyPolicy::new(nominal());
        let result = server.run(&trace, &mut policy);
        let segs = result.segments();
        assert!(!segs.is_empty());
        assert!(segs[0].start.abs() < 1e-12);
        for w in segs.windows(2) {
            assert!((w[1].start - w[0].end).abs() < 1e-9, "gap in timeline");
        }
        assert!((segs.last().unwrap().end - result.end_time()).abs() < 1e-9);
    }

    #[test]
    fn all_requests_complete_and_ids_are_unique() {
        let trace: Trace = (0..200)
            .map(|i| RequestSpec::new(i, i as f64 * 2e-4, 1.0e6, 1e-5))
            .collect();
        let server = Server::new(cfg());
        let mut policy = FixedFrequencyPolicy::new(nominal());
        let result = server.run(&trace, &mut policy);
        assert_eq!(result.records().len(), 200);
        let mut ids: Vec<u64> = result.records().iter().map(|r| r.id).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 200);
        for r in result.records() {
            assert!(r.completion >= r.start);
            assert!(r.start >= r.arrival);
        }
    }

    #[test]
    fn snapshots_reuse_one_scratch_buffer() {
        // Structural guarantee of the scratch-state API: every policy
        // callback sees the same retained `queued` buffer. Its pointer may
        // move while capacity grows to the queue's high-water mark, but must
        // then stay fixed — i.e. zero steady-state allocations per event.
        struct PtrRecorder {
            ptrs: Vec<(*const QueuedView, usize)>,
        }
        impl DvfsPolicy for PtrRecorder {
            fn name(&self) -> &str {
                "ptr-recorder"
            }
            fn on_arrival(&mut self, state: &ServerState) -> PolicyDecision {
                self.ptrs
                    .push((state.queued.as_ptr(), state.queued.capacity()));
                PolicyDecision::Keep
            }
            fn on_completion(&mut self, state: &ServerState, _r: &RequestRecord) -> PolicyDecision {
                self.ptrs
                    .push((state.queued.as_ptr(), state.queued.capacity()));
                PolicyDecision::Keep
            }
        }

        // One large burst up front sets the queue's high-water mark, then
        // spaced-out requests keep generating events at shallow depth.
        let trace: Trace = (0..50)
            .map(|i| RequestSpec::new(i, 0.0, 1.2e6, 0.0))
            .chain((50..400).map(|i| RequestSpec::new(i, 0.05 + i as f64 * 1e-3, 1.2e6, 0.0)))
            .collect();
        let mut recorder = PtrRecorder { ptrs: Vec::new() };
        let _ = Server::new(cfg()).run(&trace, &mut recorder);

        assert!(recorder.ptrs.len() >= 800); // arrivals + completions
        let max_cap = recorder.ptrs.iter().map(|&(_, c)| c).max().unwrap();
        assert!(max_cap >= 7, "burst of 8 should queue at least 7");
        // Once capacity reaches its high-water mark, the pointer never
        // changes again: the buffer is reused for every later event.
        let first_at_max = recorder
            .ptrs
            .iter()
            .position(|&(_, c)| c == max_cap)
            .unwrap();
        let steady = &recorder.ptrs[first_at_max..];
        let ptr = steady[0].0;
        assert!(steady.len() > recorder.ptrs.len() / 2);
        for &(p, c) in steady {
            assert_eq!(p, ptr, "snapshot buffer reallocated after high-water mark");
            assert_eq!(c, max_cap);
        }
    }

    #[test]
    #[should_panic(expected = "not an available DVFS level")]
    fn policy_cannot_request_invalid_level() {
        struct BadPolicy;
        impl DvfsPolicy for BadPolicy {
            fn name(&self) -> &str {
                "bad"
            }
            fn on_arrival(&mut self, _state: &ServerState) -> PolicyDecision {
                PolicyDecision::SetFrequency(Freq::from_mhz(2500))
            }
            fn on_completion(&mut self, _s: &ServerState, _r: &RequestRecord) -> PolicyDecision {
                PolicyDecision::Keep
            }
        }
        let trace = Trace::new(vec![RequestSpec::new(0, 0.0, 1e6, 0.0)]);
        let server = Server::new(cfg());
        let _ = server.run(&trace, &mut BadPolicy);
    }

    // ----- ServerSim stepping-surface tests -------------------------------

    #[test]
    fn step_yields_events_in_round_order() {
        // One request at t=0 at nominal: arrival, completion (1 ms later),
        // then ticks would follow only while open; close and observe the end.
        let mut sim = ServerSim::new(cfg(), FixedFrequencyPolicy::new(nominal()));
        sim.offer(RequestSpec::new(0, 0.0, 2.4e6, 0.0));
        sim.close();

        assert_eq!(sim.next_event_time(), Some(0.0));
        assert!(matches!(sim.step(), Some(SimEvent::Arrival { id: 0 })));
        assert_eq!(sim.pending_requests(), 1);

        let next = sim.next_event_time().unwrap();
        assert!((next - 1e-3).abs() < 1e-9);
        match sim.step() {
            Some(SimEvent::Completion(record)) => {
                assert_eq!(record.id, 0);
                assert!((record.latency() - 1e-3).abs() < 1e-9);
            }
            other => panic!("expected completion, got {other:?}"),
        }
        assert!(sim.step().is_none(), "closed idle sim has no more events");
        let result = sim.finish();
        assert_eq!(result.records().len(), 1);
    }

    #[test]
    fn open_sim_keeps_ticking_while_idle() {
        let mut sim = ServerSim::new(cfg(), FixedFrequencyPolicy::new(nominal()));
        // No work at all: the next events are the periodic ticks.
        assert_eq!(sim.next_event_time(), Some(0.1));
        assert_eq!(sim.step(), Some(SimEvent::Tick));
        assert_eq!(sim.step(), Some(SimEvent::Tick));
        assert!((sim.now() - 0.2).abs() < 1e-12);
        // Closing with no admitted work ends the stream immediately.
        sim.close();
        assert_eq!(sim.next_event_time(), None);
        assert!(sim.step().is_none());
    }

    #[test]
    fn drain_until_is_inclusive_and_counts_events() {
        let mut sim = ServerSim::new(cfg(), FixedFrequencyPolicy::new(nominal()));
        sim.offer(RequestSpec::new(0, 0.05, 2.4e6, 0.0));
        // Up to t=0.05 inclusive: the arrival is admitted, the completion at
        // 0.051 is not yet due, and no tick has fired (first tick at 0.1).
        let n = sim.drain_until(0.05);
        assert_eq!(n, 1);
        assert_eq!(sim.pending_requests(), 1);
        assert!((sim.now() - 0.05).abs() < 1e-12);
        // Draining further picks up the completion.
        let n = sim.drain_until(0.06);
        assert_eq!(n, 1);
        assert_eq!(sim.records().len(), 1);
    }

    #[test]
    fn in_flight_counts_offered_requests_before_admission() {
        let mut sim = ServerSim::new(cfg(), FixedFrequencyPolicy::new(nominal()));
        sim.offer(RequestSpec::new(0, 0.02, 2.4e6, 0.0));
        sim.offer(RequestSpec::new(1, 0.03, 2.4e6, 0.0));
        assert_eq!(sim.in_flight(), 2);
        assert_eq!(sim.pending_requests(), 0);
        assert!(sim.is_idle());
        sim.drain_until(0.02);
        assert_eq!(sim.in_flight(), 2); // one admitted, one still offered
        assert_eq!(sim.pending_requests(), 1);
    }

    #[test]
    #[should_panic(expected = "closed ServerSim")]
    fn offer_after_close_panics() {
        let mut sim = ServerSim::new(cfg(), FixedFrequencyPolicy::new(nominal()));
        sim.close();
        sim.offer(RequestSpec::new(0, 0.0, 1e6, 0.0));
    }

    #[test]
    #[should_panic(expected = "in the past")]
    fn offer_in_the_past_panics() {
        let mut sim = ServerSim::new(cfg(), FixedFrequencyPolicy::new(nominal()));
        sim.step(); // first tick moves the clock to 0.1
        sim.offer(RequestSpec::new(0, 0.05, 1e6, 0.0));
    }

    #[test]
    #[should_panic(expected = "time-ordered")]
    fn out_of_order_offers_panic() {
        let mut sim = ServerSim::new(cfg(), FixedFrequencyPolicy::new(nominal()));
        sim.offer(RequestSpec::new(0, 0.05, 1e6, 0.0));
        sim.offer(RequestSpec::new(1, 0.04, 1e6, 0.0));
    }

    #[test]
    #[should_panic(expected = "close() the arrival stream")]
    fn run_to_completion_requires_closed_stream() {
        let mut sim = ServerSim::new(cfg(), FixedFrequencyPolicy::new(nominal()));
        sim.run_to_completion();
    }

    #[test]
    fn coast_extends_the_idle_timeline_without_events() {
        let mut sim = ServerSim::new(cfg(), FixedFrequencyPolicy::new(nominal()));
        sim.offer(RequestSpec::new(0, 0.0, 2.4e6, 0.0));
        sim.close();
        sim.run_to_completion();
        assert!((sim.now() - 1e-3).abs() < 1e-9);
        sim.coast_to(0.05);
        assert!((sim.now() - 0.05).abs() < 1e-12);
        // Coasting into the past is a no-op.
        sim.coast_to(0.01);
        assert!((sim.now() - 0.05).abs() < 1e-12);
        let result = sim.finish();
        let res = result.freq_residency();
        assert!((res.idle_time() - (0.05 - 1e-3)).abs() < 1e-9);
        assert!((result.end_time() - 0.05).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "cannot coast past a pending event")]
    fn coast_cannot_skip_pending_events() {
        let mut sim = ServerSim::new(cfg(), FixedFrequencyPolicy::new(nominal()));
        sim.offer(RequestSpec::new(0, 0.02, 2.4e6, 0.0));
        sim.coast_to(0.03);
    }

    #[test]
    fn retarget_clamps_policy_requests_and_steps_down_immediately() {
        // Instant transitions so the clamp is observable directly.
        let config =
            SimConfig::default().with_dvfs(DvfsConfig::haswell_like().with_transition_latency(0.0));
        let mut sim = ServerSim::new(config, FixedFrequencyPolicy::new(Freq::from_mhz(3400)));
        sim.offer(RequestSpec::new(0, 0.0, 3.4e6, 0.0));
        sim.step(); // arrival: policy requests 3.4 GHz
        assert_eq!(sim.current_freq(), Freq::from_mhz(3400));

        // Ceiling below the current target: the core steps down at once, and
        // the ceiling is snapped down to a level (1.7 GHz -> 1.6 GHz).
        sim.retarget(Some(Freq::from_mhz(1700)));
        assert_eq!(sim.freq_ceiling(), Some(Freq::from_mhz(1600)));
        assert_eq!(sim.current_freq(), Freq::from_mhz(1600));

        // Later policy requests are clamped...
        sim.offer(RequestSpec::new(1, 1e-3, 1.0e6, 0.0));
        sim.drain_until(1e-3);
        assert_eq!(sim.current_freq(), Freq::from_mhz(1600));

        // ...until the ceiling is lifted and the policy re-decides.
        sim.retarget(None);
        assert_eq!(sim.freq_ceiling(), None);
        sim.offer(RequestSpec::new(2, 2e-3, 1.0e6, 0.0));
        sim.drain_until(2e-3);
        assert_eq!(sim.current_freq(), Freq::from_mhz(3400));
    }

    #[test]
    fn retarget_with_pending_transition_replaces_the_target() {
        // 4 us transition latency: boost is requested on arrival, then the
        // ceiling lands while the transition is still in flight.
        let mut sim = ServerSim::new(cfg(), FixedFrequencyPolicy::new(Freq::from_mhz(3000)));
        sim.offer(RequestSpec::new(0, 0.0, 2.4e6, 0.0));
        sim.step(); // arrival at t=0; transition to 3.0 GHz pending
        assert_eq!(sim.target_freq(), Freq::from_mhz(3000));
        sim.retarget(Some(Freq::from_mhz(1200)));
        assert_eq!(sim.target_freq(), Freq::from_mhz(1200));
        // The transition event delivers the clamped frequency.
        match sim.step() {
            Some(SimEvent::FreqTransition(f)) => assert_eq!(f, Freq::from_mhz(1200)),
            other => panic!("expected transition, got {other:?}"),
        }
    }

    #[test]
    fn steal_and_inject_move_a_queued_request_between_servers() {
        let mut donor = ServerSim::new(cfg(), FixedFrequencyPolicy::new(nominal()));
        let mut receiver = ServerSim::new(cfg(), FixedFrequencyPolicy::new(nominal()));
        // Three simultaneous arrivals on the donor: one runs, two queue.
        for id in 0..3 {
            donor.offer(RequestSpec::new(id, 0.0, 2.4e6, 0.0));
        }
        donor.drain_until(0.0);
        assert_eq!(donor.queued_len(), 2);
        assert!(receiver.is_idle());

        // Steal the back of the queue (the last-arrived request, id 2).
        let stolen = donor.steal_queued().expect("queue is non-empty");
        assert_eq!(stolen.id, 2);
        assert_eq!(donor.queued_len(), 1);

        // Inject at the donor's clock with the original arrival preserved.
        receiver.inject(donor.now(), stolen);
        assert_eq!(receiver.pending_requests(), 1);
        assert!(!receiver.is_idle());

        donor.close();
        receiver.close();
        donor.run_to_completion();
        receiver.run_to_completion();
        let d = donor.finish();
        let r = receiver.finish();
        // Conservation: ids 0,1 complete on the donor, 2 on the receiver,
        // and the migrated record keeps its original arrival.
        let mut ids: Vec<u64> = d.records().iter().map(|rec| rec.id).collect();
        ids.sort_unstable();
        assert_eq!(ids, vec![0, 1]);
        assert_eq!(r.records().len(), 1);
        assert_eq!(r.records()[0].id, 2);
        assert_eq!(r.records()[0].arrival, 0.0);
        // The receiver served it immediately: 1 ms at nominal.
        assert!((r.records()[0].latency() - 1e-3).abs() < 1e-9);
    }

    #[test]
    fn steal_never_touches_the_request_in_service() {
        let mut sim = ServerSim::new(cfg(), FixedFrequencyPolicy::new(nominal()));
        sim.offer(RequestSpec::new(0, 0.0, 2.4e6, 0.0));
        sim.drain_until(0.0);
        assert_eq!(sim.pending_requests(), 1);
        assert_eq!(sim.queued_len(), 0);
        assert!(sim.steal_queued().is_none());
        assert_eq!(sim.pending_requests(), 1);
    }

    #[test]
    fn inject_into_a_closed_drained_server_revives_it() {
        let mut sim = ServerSim::new(cfg(), FixedFrequencyPolicy::new(nominal()));
        sim.offer(RequestSpec::new(0, 0.0, 2.4e6, 0.0));
        sim.close();
        sim.run_to_completion();
        assert_eq!(sim.next_event_time(), None);
        // Migration during the fleet drain phase lands work on a server that
        // already finished its own stream; the clock advances to the
        // injection instant.
        sim.inject(0.05, RequestSpec::new(1, 0.0, 2.4e6, 0.0));
        assert!((sim.now() - 0.05).abs() < 1e-12);
        assert!(sim.next_event_time().is_some());
        sim.run_to_completion();
        assert_eq!(sim.records().len(), 2);
        // The injected request's start honours the injection time, so its
        // latency spans the wait since its original arrival.
        let rec = sim.records()[1];
        assert!((rec.start - 0.05).abs() < 1e-12);
        assert!(rec.start >= rec.arrival);
    }

    #[test]
    #[should_panic(expected = "cannot inject past a pending event")]
    fn inject_cannot_skip_pending_events() {
        let mut sim = ServerSim::new(cfg(), FixedFrequencyPolicy::new(nominal()));
        sim.offer(RequestSpec::new(0, 0.02, 2.4e6, 0.0));
        sim.inject(0.03, RequestSpec::new(1, 0.01, 2.4e6, 0.0));
    }

    #[test]
    #[should_panic(expected = "before it arrived")]
    fn inject_cannot_predate_the_arrival() {
        let mut sim = ServerSim::new(cfg(), FixedFrequencyPolicy::new(nominal()));
        sim.inject(0.01, RequestSpec::new(0, 0.02, 2.4e6, 0.0));
    }

    #[test]
    fn cancel_removes_a_queued_copy_without_touching_the_clock() {
        let mut sim = ServerSim::new(cfg(), FixedFrequencyPolicy::new(nominal()));
        for id in 0..3 {
            sim.offer(RequestSpec::new(id, 0.0, 2.4e6, 0.0));
        }
        sim.drain_until(0.0);
        assert_eq!(sim.queued_len(), 2);
        let now = sim.now();
        // A queued cancel behaves like remove_queued: no clock movement even
        // when `at` lies in the future.
        let gone = sim.cancel(0.4e-3, 1).expect("id 1 is queued");
        assert_eq!(gone.id, 1);
        assert_eq!(sim.queued_len(), 1);
        assert!((sim.now() - now).abs() < 1e-15);
        sim.close();
        sim.run_to_completion();
        let ids: Vec<u64> = sim.records().iter().map(|r| r.id).collect();
        assert_eq!(ids, vec![0, 2]);
    }

    #[test]
    fn cancel_aborts_the_in_service_copy_and_starts_the_next() {
        let mut sim = ServerSim::new(cfg(), FixedFrequencyPolicy::new(nominal()));
        for id in 0..3 {
            sim.offer(RequestSpec::new(id, 0.0, 2.4e6, 0.0));
        }
        sim.drain_until(0.0);
        // Abort id 0 halfway through its 1 ms service.
        let gone = sim.cancel(0.5e-3, 0).expect("id 0 is in service");
        assert_eq!(gone.id, 0);
        assert!((sim.now() - 0.5e-3).abs() < 1e-12);
        sim.close();
        sim.run_to_completion();
        // No record for the aborted request; id 1 started at the cancel
        // instant and the partial work stays on the busy timeline.
        let ids: Vec<u64> = sim.records().iter().map(|r| r.id).collect();
        assert_eq!(ids, vec![1, 2]);
        assert!((sim.records()[0].start - 0.5e-3).abs() < 1e-12);
        let busy: f64 = sim
            .segments()
            .iter()
            .filter(|s| s.activity == CoreActivity::Busy)
            .map(Segment::duration)
            .sum();
        assert!((busy - 2.5e-3).abs() < 1e-9);
    }

    #[test]
    fn cancel_of_an_absent_id_is_a_no_op() {
        let mut sim = ServerSim::new(cfg(), FixedFrequencyPolicy::new(nominal()));
        sim.offer(RequestSpec::new(0, 0.0, 2.4e6, 0.0));
        sim.drain_until(0.0);
        let now = sim.now();
        let segments = sim.segments().to_vec();
        assert!(sim.cancel(0.5e-3, 77).is_none());
        // Zero state change: clock, timeline, and pending work untouched.
        assert!((sim.now() - now).abs() < 1e-15);
        assert_eq!(sim.segments(), &segments[..]);
        assert_eq!(sim.pending_requests(), 1);
        sim.close();
        sim.run_to_completion();
        assert_eq!(sim.records().len(), 1);
    }

    #[test]
    fn cancel_of_the_last_request_lets_a_sleep_capable_core_sleep() {
        let config = cfg().with_idle_mode(IdleMode::Sleep {
            wakeup_latency: 1e-4,
        });
        let mut sim = ServerSim::new(config, FixedFrequencyPolicy::new(nominal()));
        sim.offer(RequestSpec::new(0, 0.0, 2.4e6, 0.0));
        sim.drain_until(0.0);
        // The wake-up was already paid by the arrival at t=0; the abort
        // happens mid-service with no queue behind it.
        let gone = sim.cancel(0.6e-3, 0).expect("id 0 is in service");
        assert_eq!(gone.id, 0);
        assert_eq!(sim.current_activity(), CoreActivity::Sleep);
        sim.close();
        sim.run_to_completion();
        assert!(sim.records().is_empty());
    }

    #[test]
    #[should_panic(expected = "cannot cancel past a pending event")]
    fn cancel_cannot_skip_pending_events() {
        let mut sim = ServerSim::new(cfg(), FixedFrequencyPolicy::new(nominal()));
        sim.offer(RequestSpec::new(0, 0.0, 2.4e6, 0.0));
        sim.drain_until(0.0);
        // The completion at 1 ms is pending; cancelling at 2 ms must refuse.
        sim.cancel(2e-3, 0);
    }

    #[test]
    fn segments_and_current_activity_expose_the_live_timeline() {
        let mut sim = ServerSim::new(cfg(), FixedFrequencyPolicy::new(nominal()));
        assert_eq!(sim.current_activity(), CoreActivity::Idle);
        sim.offer(RequestSpec::new(0, 0.0, 2.4e6, 0.0));
        sim.drain_until(0.0);
        assert_eq!(sim.current_activity(), CoreActivity::Busy);
        // Segments cover [0, now]; the in-service span is not yet recorded.
        assert!(sim.segments().iter().all(|s| s.end <= sim.now() + TIME_EPS));
        sim.close();
        sim.run_to_completion();
        assert_eq!(sim.current_activity(), CoreActivity::Idle);
        let busy: f64 = sim
            .segments()
            .iter()
            .filter(|s| s.activity == CoreActivity::Busy)
            .map(Segment::duration)
            .sum();
        assert!((busy - 1e-3).abs() < 1e-9);
    }

    #[test]
    fn event_stream_matches_run_records() {
        // The SimEvent stream must carry exactly the records the RunResult
        // reports, in the same order.
        let trace: Trace = (0..40)
            .map(|i| RequestSpec::new(i, i as f64 * 7e-4, 1.5e6, 1e-5))
            .collect();
        let mut sim = ServerSim::new(cfg(), FixedFrequencyPolicy::new(nominal()));
        sim.offer_all(trace.requests().iter().copied());
        sim.close();
        let mut completions = Vec::new();
        let mut arrivals = Vec::new();
        while let Some(event) = sim.step() {
            match event {
                SimEvent::Completion(r) => completions.push(r),
                SimEvent::Arrival { id } => arrivals.push(id),
                _ => {}
            }
        }
        let result = sim.finish();
        assert_eq!(arrivals.len(), 40);
        assert_eq!(completions, result.records());
    }

    // ----- Failure-surface tests ------------------------------------------

    #[test]
    fn fail_returns_the_in_service_request_and_stops_service() {
        let mut sim = ServerSim::new(cfg(), FixedFrequencyPolicy::new(nominal()));
        for id in 0..3 {
            sim.offer(RequestSpec::new(id, 0.0, 2.4e6, 0.0));
        }
        sim.drain_until(0.0);
        assert_eq!(sim.pending_requests(), 3);

        let lost = sim.fail(0.5e-3).expect("a request was in service");
        assert_eq!(lost.id, 0);
        assert!(sim.is_down());
        assert_eq!(sim.queued_len(), 2);
        assert_eq!(sim.current_activity(), CoreActivity::Sleep);

        // While down: no completions, no ticks; the queue can be drained.
        sim.close();
        assert_eq!(sim.next_event_time(), None);
        assert_eq!(sim.steal_queued().map(|s| s.id), Some(2));
        assert_eq!(sim.remove_queued(1).map(|s| s.id), Some(1));
        assert!(sim.remove_queued(1).is_none());
        assert!(sim.records().is_empty(), "nothing completed");
    }

    #[test]
    fn recover_resumes_queued_work_and_accounts_downtime() {
        let mut sim = ServerSim::new(cfg(), FixedFrequencyPolicy::new(nominal()));
        for id in 0..2 {
            sim.offer(RequestSpec::new(id, 0.0, 2.4e6, 0.0));
        }
        sim.drain_until(0.0);
        let _ = sim.fail(0.0);
        assert!((sim.downtime() - 0.0).abs() < 1e-12);

        sim.recover(0.01);
        assert!(!sim.is_down());
        assert!((sim.downtime() - 0.01).abs() < 1e-12);
        assert_eq!(sim.pending_requests(), 1, "queue head restarted");

        sim.close();
        sim.run_to_completion();
        // Request 1 (id 0 was lost) started at recovery: 1 ms at nominal.
        assert_eq!(sim.records().len(), 1);
        let rec = sim.records()[0];
        assert_eq!(rec.id, 1);
        assert!((rec.start - 0.01).abs() < 1e-12);
        assert!((rec.completion - 0.011).abs() < 1e-9);
        // The outage shows up as a sleep span on the timeline.
        let result = sim.finish();
        assert!((result.freq_residency().sleep - 0.01).abs() < 1e-9);
    }

    #[test]
    fn down_server_still_queues_offered_arrivals_without_serving_them() {
        let mut sim = ServerSim::new(cfg(), FixedFrequencyPolicy::new(nominal()));
        let _ = sim.fail(0.0);
        sim.offer(RequestSpec::new(0, 0.002, 2.4e6, 0.0));
        sim.drain_until(0.002);
        assert_eq!(sim.queued_len(), 1, "arrival queued, not served");
        assert_eq!(sim.pending_requests(), 1);
        sim.recover(0.005);
        sim.close();
        sim.run_to_completion();
        assert_eq!(sim.records().len(), 1);
        let rec = sim.records()[0];
        assert_eq!(rec.arrival, 0.002, "original arrival preserved");
        assert!((rec.start - 0.005).abs() < 1e-12);
    }

    #[test]
    fn downtime_accumulates_across_intervals_and_counts_the_open_one() {
        let mut sim = ServerSim::new(cfg(), FixedFrequencyPolicy::new(nominal()));
        let _ = sim.fail(0.0);
        sim.recover(0.01);
        let _ = sim.fail(0.02);
        sim.coast_to(0.05);
        assert!((sim.downtime() - (0.01 + 0.03)).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "already down")]
    fn double_fail_panics() {
        let mut sim = ServerSim::new(cfg(), FixedFrequencyPolicy::new(nominal()));
        let _ = sim.fail(0.0);
        let _ = sim.fail(0.01);
    }

    #[test]
    #[should_panic(expected = "not down")]
    fn recover_of_a_healthy_server_panics() {
        let mut sim = ServerSim::new(cfg(), FixedFrequencyPolicy::new(nominal()));
        sim.recover(0.0);
    }

    #[test]
    fn slowdown_stretches_service_and_one_restores_it() {
        let trace = Trace::new(vec![RequestSpec::new(0, 0.0, 2.4e6, 0.0)]);
        let run_with = |factor: f64| {
            let mut sim = ServerSim::new(cfg(), FixedFrequencyPolicy::new(nominal()));
            sim.set_slowdown(factor);
            sim.offer_all(trace.requests().iter().copied());
            sim.close();
            sim.run_to_completion();
            sim.finish()
        };
        let normal = run_with(1.0);
        let straggling = run_with(3.0);
        assert!((normal.records()[0].latency() - 1e-3).abs() < 1e-9);
        assert!((straggling.records()[0].latency() - 3e-3).abs() < 1e-9);
    }

    #[test]
    fn mid_request_slowdown_change_blends_like_a_frequency_change() {
        // 2 ms of work at nominal. Run the first 1 ms at full speed (50%
        // progress), then a 2x straggle: the remaining half takes 2 ms.
        let mut sim = ServerSim::new(cfg(), FixedFrequencyPolicy::new(nominal()));
        sim.offer(RequestSpec::new(0, 0.0, 4.8e6, 0.0));
        sim.drain_until(0.0);
        sim.coast_to(1e-3);
        sim.set_slowdown(2.0);
        sim.close();
        sim.run_to_completion();
        let rec = sim.records()[0];
        assert!(
            (rec.completion - 3e-3).abs() < 1e-9,
            "completion {} vs expected 3 ms",
            rec.completion
        );
    }

    #[test]
    fn stick_freq_pins_the_core_against_policy_and_ceiling() {
        let config =
            SimConfig::default().with_dvfs(DvfsConfig::haswell_like().with_transition_latency(0.0));
        let mut sim = ServerSim::new(config, FixedFrequencyPolicy::new(Freq::from_mhz(3400)));
        sim.stick_freq(Some(Freq::from_mhz(900)));
        assert_eq!(sim.stuck_freq(), Some(Freq::from_mhz(800)), "snapped down");
        assert_eq!(sim.current_freq(), Freq::from_mhz(800));

        // Policy requests and fleet ceilings are both ignored while stuck.
        sim.offer(RequestSpec::new(0, 0.0, 0.8e6, 0.0));
        sim.drain_until(0.0);
        assert_eq!(sim.current_freq(), Freq::from_mhz(800));
        sim.retarget(Some(Freq::from_mhz(1600)));
        assert_eq!(sim.current_freq(), Freq::from_mhz(800));

        // Unsticking re-applies the recorded ceiling: the policy's 3.4 GHz
        // target clamps to 1.6 GHz.
        sim.stick_freq(None);
        assert_eq!(sim.current_freq(), Freq::from_mhz(800), "until re-decided");
        sim.offer(RequestSpec::new(1, 2e-3, 0.8e6, 0.0));
        sim.drain_until(2e-3);
        assert_eq!(sim.current_freq(), Freq::from_mhz(1600));
    }

    #[test]
    fn pending_transition_still_fires_while_down() {
        // 4 µs V/F latency: a ceiling initiates a downward transition, the
        // server crashes before it lands, and the regulator finishes its
        // ramp during the outage.
        let mut sim = ServerSim::new(cfg(), FixedFrequencyPolicy::new(Freq::from_mhz(3000)));
        sim.offer(RequestSpec::new(0, 0.0, 2.4e6, 0.0));
        sim.step(); // arrival at 3.0 GHz
        sim.retarget(Some(Freq::from_mhz(1200))); // transition pending
        let _ = sim.fail(1e-6);
        match sim.step() {
            Some(SimEvent::FreqTransition(f)) => assert_eq!(f, Freq::from_mhz(1200)),
            other => panic!("expected the pending transition, got {other:?}"),
        }
        assert!(sim.is_down());
    }
}
