//! Streaming open-loop arrival sources and time-varying load shapes.
//!
//! Every fleet experiment before this crate replayed a fully
//! pre-materialized [`rubik_sim::Trace`] — O(requests) memory up front,
//! and always at a fixed rate, so the fleet controller never saw a load
//! swing. The paper's core claim (Fig. 1) is precisely about *reacting to
//! load changes* within milliseconds; this crate supplies the load
//! changes, as pull-based arrival streams the cluster driver consumes one
//! request at a time:
//!
//! * [`ArrivalSource`] — the trait: a seeded, deterministic stream of
//!   time-ordered arrivals. `Cluster::run_streamed` in `rubik-cluster`
//!   pulls from any implementor, keeping resident memory proportional to
//!   in-flight work rather than total requests.
//! * [`PoissonSource`] — steady open-loop Poisson arrivals, bit-for-bit
//!   identical to `WorkloadGenerator::steady_trace` with the same seed.
//! * [`ShapedSource`] — a non-homogeneous Poisson process following a
//!   [`LoadShape`] (ramps, load steps, diurnal sinusoids, spikes, and
//!   piecewise schedules), drawn by seeded thinning.
//! * [`MergedSource`] — several per-application streams interleaved
//!   deterministically by `(time, stream index)` for heterogeneous fleets.
//! * [`StreamingTraceReader`] / [`StreamingTraceWriter`] — file-backed
//!   streaming replay and capture of the batch trace JSON schema, so huge
//!   traces never materialize.
//! * [`TraceSource`] — adapts any in-memory [`rubik_sim::Trace`] into a
//!   source (the bridge the batch `Cluster::run` path is built on).
//!
//! # Streaming arrivals and load shapes
//!
//! A load shape composes like a schedule and drives a source. Here a fleet
//! of 4 servers rides a diurnal sinusoid and then a morning ramp; the
//! stream is pulled lazily and is deterministic in the seed:
//!
//! ```
//! use rubik_load::{ArrivalSource, LoadShape, ShapedSource};
//! use rubik_workloads::AppProfile;
//!
//! let shape = LoadShape::Sequence(vec![
//!     LoadShape::Diurnal { mean: 0.4, amplitude: 0.2, period: 4.0, duration: 4.0 },
//!     LoadShape::Ramp { from: 0.4, to: 0.7, duration: 2.0 },
//! ]);
//! shape.validate().expect("well-formed shape");
//!
//! let mut source = ShapedSource::new(AppProfile::masstree(), shape, 42).for_fleet(4);
//! let mut arrivals = 0usize;
//! let mut last = 0.0;
//! while let Some(request) = source.next_arrival() {
//!     assert!(request.arrival >= last, "streams are time-ordered");
//!     last = request.arrival;
//!     arrivals += 1;
//! }
//! assert!(last < 6.0, "arrivals stay inside the shape window");
//! assert!(arrivals > 100, "a 4-server fleet draws plenty of requests");
//! ```
//!
//! The empirical rate tracks the shape segment by segment (tested in
//! [`source`]), and the same seed reproduces the stream byte-for-byte, so
//! shaped experiments are as replayable as fixed traces.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod shape;
pub mod source;
pub mod trace_io;

pub use shape::{LoadShape, LoadShapeError};
pub use source::{
    drain_to_trace, ArrivalSource, MergedSource, PoissonSource, ShapedSource, TraceSource,
};
pub use trace_io::{StreamError, StreamingTraceReader, StreamingTraceWriter};
