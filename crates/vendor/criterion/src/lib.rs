//! Minimal offline stand-in for the `criterion` benchmarking crate.
//!
//! Implements the subset of the criterion API used by the `rubik-bench`
//! benches, measuring wall-clock time with the usual
//! calibrate-then-sample protocol:
//!
//! 1. **Calibration** — run the routine until it has consumed
//!    [`Criterion::sample_time_ms`] of wall-clock time (or a minimum of one
//!    iteration) to pick an iteration count per sample.
//! 2. **Sampling** — collect [`Criterion::sample_size`] samples of that many
//!    iterations each and report min / median / mean ns per iteration.
//!
//! Results print to stdout in a `name  time: [min median mean]` format and
//! can additionally be written to a JSON file so CI can track the perf
//! trajectory across PRs:
//!
//! * call [`Criterion::output_json`] in the bench's `config`, or
//! * set the `RUBIK_BENCH_JSON` environment variable to a path.
//!
//! JSON files are merged by benchmark id, so several bench binaries can share
//! one output file (the repo-level `BENCH_controller.json`). The schema is
//! one object: `{"benchmarks": [{"id", "mean_ns", "median_ns", "min_ns",
//! "samples", "iters_per_sample", "elems_per_iter"}]}`.
//!
//! Environment knobs (for CI smoke runs): `RUBIK_BENCH_SAMPLE_MS` overrides
//! the per-sample target time, `RUBIK_BENCH_SAMPLES` overrides the sample
//! count.

use std::fmt::Display;
use std::fs;
use std::path::PathBuf;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How the input of [`Bencher::iter_batched`] is batched. The stand-in
/// re-runs setup per iteration regardless; the variants exist for API
/// compatibility.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small inputs: setup cost amortized over one iteration.
    SmallInput,
    /// Large inputs.
    LargeInput,
    /// One setup per iteration.
    PerIteration,
}

/// Throughput annotation for a benchmark group.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A benchmark identifier: function name plus an optional parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Creates an id of the form `name/parameter`.
    pub fn new<S: Into<String>, P: Display>(name: S, parameter: P) -> Self {
        Self {
            id: format!("{}/{}", name.into(), parameter),
        }
    }

    /// Creates an id from a parameter alone.
    pub fn from_parameter<P: Display>(parameter: P) -> Self {
        Self {
            id: parameter.to_string(),
        }
    }
}

/// One measured benchmark.
#[derive(Debug, Clone)]
pub struct BenchResult {
    /// Full benchmark id (`group/name` when run in a group).
    pub id: String,
    /// Mean nanoseconds per iteration.
    pub mean_ns: f64,
    /// Median nanoseconds per iteration.
    pub median_ns: f64,
    /// Minimum nanoseconds per iteration.
    pub min_ns: f64,
    /// Number of samples collected.
    pub samples: usize,
    /// Iterations per sample.
    pub iters_per_sample: u64,
    /// Elements per iteration, when the group declared a throughput.
    pub elems_per_iter: Option<u64>,
}

/// The benchmark driver. Mirrors `criterion::Criterion`.
#[derive(Debug)]
pub struct Criterion {
    sample_size: usize,
    sample_time_ms: u64,
    json_path: Option<PathBuf>,
    results: Vec<BenchResult>,
}

impl Default for Criterion {
    fn default() -> Self {
        let sample_time_ms = std::env::var("RUBIK_BENCH_SAMPLE_MS")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(10);
        let sample_size = std::env::var("RUBIK_BENCH_SAMPLES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(20);
        let json_path = std::env::var("RUBIK_BENCH_JSON").ok().map(PathBuf::from);
        Self {
            sample_size,
            sample_time_ms,
            json_path,
            results: Vec::new(),
        }
    }
}

impl Criterion {
    /// Sets the number of samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0, "sample size must be positive");
        if std::env::var("RUBIK_BENCH_SAMPLES").is_err() {
            self.sample_size = n;
        }
        self
    }

    /// Also write results to `path` as JSON (merged by id if the file
    /// already exists). Relative paths resolve against the working
    /// directory of the bench process.
    pub fn output_json<P: Into<PathBuf>>(mut self, path: P) -> Self {
        if self.json_path.is_none() {
            self.json_path = Some(path.into());
        }
        self
    }

    /// Runs a standalone benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.run_one(name.to_string(), None, &mut f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
            throughput: None,
        }
    }

    /// Finishes the run: emits the JSON file if configured. Called by
    /// `criterion_group!`-generated code; harmless to call repeatedly.
    pub fn finalize(&mut self) {
        let Some(path) = self.json_path.clone() else {
            return;
        };
        let mut merged: Vec<BenchResult> = Vec::new();
        if let Ok(existing) = fs::read_to_string(&path) {
            merged = parse_results_json(&existing);
        }
        for r in &self.results {
            if let Some(slot) = merged.iter_mut().find(|m| m.id == r.id) {
                *slot = r.clone();
            } else {
                merged.push(r.clone());
            }
        }
        let json = results_to_json(&merged);
        if let Err(e) = fs::write(&path, json) {
            eprintln!("criterion: could not write {}: {e}", path.display());
        } else {
            println!(
                "criterion: wrote {} benchmark(s) to {}",
                merged.len(),
                path.display()
            );
        }
    }

    /// Measured results so far (used by tests).
    pub fn results(&self) -> &[BenchResult] {
        &self.results
    }

    fn run_one<F>(&mut self, id: String, elems: Option<u64>, f: &mut F)
    where
        F: FnMut(&mut Bencher),
    {
        // Calibrate: grow the iteration count until one batch takes at least
        // the per-sample target.
        let target = Duration::from_millis(self.sample_time_ms.max(1));
        let mut iters: u64 = 1;
        loop {
            let mut b = Bencher {
                iters,
                elapsed: Duration::ZERO,
            };
            f(&mut b);
            if b.elapsed >= target || iters >= 1 << 24 {
                break;
            }
            // Aim directly for the target based on the observed rate.
            let per_iter = b.elapsed.as_secs_f64() / iters as f64;
            let needed = if per_iter > 0.0 {
                (target.as_secs_f64() / per_iter).ceil() as u64
            } else {
                iters * 8
            };
            iters = needed.clamp(iters + 1, iters * 8);
        }

        let mut per_iter_ns: Vec<f64> = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let mut b = Bencher {
                iters,
                elapsed: Duration::ZERO,
            };
            f(&mut b);
            per_iter_ns.push(b.elapsed.as_nanos() as f64 / iters as f64);
        }
        per_iter_ns.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
        let min = per_iter_ns[0];
        let median = per_iter_ns[per_iter_ns.len() / 2];
        let mean = per_iter_ns.iter().sum::<f64>() / per_iter_ns.len() as f64;

        let mut line = format!(
            "{id:<55} time: [{} {} {}]",
            fmt_ns(min),
            fmt_ns(median),
            fmt_ns(mean)
        );
        if let Some(n) = elems {
            let rate = n as f64 / (median * 1e-9);
            line.push_str(&format!("  thrpt: {rate:.0} elem/s"));
        }
        println!("{line}");

        self.results.push(BenchResult {
            id,
            mean_ns: mean,
            median_ns: median,
            min_ns: min,
            samples: self.sample_size,
            iters_per_sample: iters,
            elems_per_iter: elems,
        });
    }
}

/// A group of related benchmarks sharing a name prefix and an optional
/// throughput annotation.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Declares the work performed per iteration.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Runs a benchmark within the group.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = format!("{}/{}", self.name, name);
        let elems = self.elems();
        self.criterion.run_one(id, elems, &mut f);
        self
    }

    /// Runs a parameterized benchmark within the group.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id.id);
        let elems = self.elems();
        self.criterion.run_one(full, elems, &mut |b| f(b, input));
        self
    }

    /// Closes the group.
    pub fn finish(self) {}

    fn elems(&self) -> Option<u64> {
        match self.throughput {
            Some(Throughput::Elements(n)) => Some(n),
            _ => None,
        }
    }
}

/// Timing handle passed to benchmark closures.
#[derive(Debug)]
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine` over this sample's iterations.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }

    /// Times `routine` with a fresh input from `setup` per iteration; setup
    /// time is excluded from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let mut total = Duration::ZERO;
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            total += start.elapsed();
        }
        self.elapsed = total;
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.4} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.4} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.4} µs", ns / 1e3)
    } else {
        format!("{ns:.2} ns")
    }
}

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

fn results_to_json(results: &[BenchResult]) -> String {
    let mut out = String::from("{\n  \"benchmarks\": [\n");
    for (i, r) in results.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"id\": \"{}\", \"mean_ns\": {:.1}, \"median_ns\": {:.1}, \
             \"min_ns\": {:.1}, \"samples\": {}, \"iters_per_sample\": {}, \
             \"elems_per_iter\": {}}}",
            json_escape(&r.id),
            r.mean_ns,
            r.median_ns,
            r.min_ns,
            r.samples,
            r.iters_per_sample,
            r.elems_per_iter
                .map_or("null".to_string(), |n| n.to_string()),
        ));
        out.push_str(if i + 1 < results.len() { ",\n" } else { "\n" });
    }
    out.push_str("  ]\n}\n");
    out
}

/// Parses the JSON this module writes (line-oriented; not a general parser).
fn parse_results_json(text: &str) -> Vec<BenchResult> {
    let mut out = Vec::new();
    for line in text.lines() {
        let line = line.trim().trim_end_matches(',');
        if !line.starts_with('{') || !line.contains("\"id\"") {
            continue;
        }
        let field = |name: &str| -> Option<String> {
            let key = format!("\"{name}\": ");
            let start = line.find(&key)? + key.len();
            let rest = &line[start..];
            let end = rest.find([',', '}']).unwrap_or(rest.len());
            Some(rest[..end].trim().to_string())
        };
        let id = match field("id") {
            Some(v) => v.trim_matches('"').to_string(),
            None => continue,
        };
        let num = |name: &str| field(name).and_then(|v| v.parse::<f64>().ok());
        out.push(BenchResult {
            id,
            mean_ns: num("mean_ns").unwrap_or(0.0),
            median_ns: num("median_ns").unwrap_or(0.0),
            min_ns: num("min_ns").unwrap_or(0.0),
            samples: num("samples").unwrap_or(0.0) as usize,
            iters_per_sample: num("iters_per_sample").unwrap_or(0.0) as u64,
            elems_per_iter: field("elems_per_iter")
                .filter(|v| v != "null")
                .and_then(|v| v.parse().ok()),
        });
    }
    out
}

/// Declares a benchmark group function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $( $target(&mut criterion); )+
            criterion.finalize();
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the bench binary's `main`, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_records_a_result() {
        let mut c = Criterion {
            sample_size: 3,
            sample_time_ms: 1,
            json_path: None,
            results: Vec::new(),
        };
        c.bench_function("noop", |b| b.iter(|| 1 + 1));
        assert_eq!(c.results().len(), 1);
        assert!(c.results()[0].mean_ns >= 0.0);
        assert!(c.results()[0].iters_per_sample >= 1);
    }

    #[test]
    fn json_roundtrip_preserves_results() {
        let results = vec![
            BenchResult {
                id: "group/a".into(),
                mean_ns: 123.4,
                median_ns: 120.0,
                min_ns: 118.9,
                samples: 10,
                iters_per_sample: 1000,
                elems_per_iter: Some(2000),
            },
            BenchResult {
                id: "b".into(),
                mean_ns: 5.0,
                median_ns: 5.0,
                min_ns: 4.0,
                samples: 3,
                iters_per_sample: 7,
                elems_per_iter: None,
            },
        ];
        let parsed = parse_results_json(&results_to_json(&results));
        assert_eq!(parsed.len(), 2);
        assert_eq!(parsed[0].id, "group/a");
        assert!((parsed[0].mean_ns - 123.4).abs() < 0.2);
        assert_eq!(parsed[0].elems_per_iter, Some(2000));
        assert_eq!(parsed[1].elems_per_iter, None);
        assert_eq!(parsed[1].iters_per_sample, 7);
    }

    #[test]
    fn group_ids_are_prefixed() {
        let mut c = Criterion {
            sample_size: 2,
            sample_time_ms: 1,
            json_path: None,
            results: Vec::new(),
        };
        let mut g = c.benchmark_group("grp");
        g.throughput(Throughput::Elements(5));
        g.bench_with_input(BenchmarkId::new("f", 32), &32, |b, &n| b.iter(|| n * 2));
        g.finish();
        assert_eq!(c.results()[0].id, "grp/f/32");
        assert_eq!(c.results()[0].elems_per_iter, Some(5));
    }
}
