//! Feedback-based fine-tuning of Rubik's internal latency target.
//!
//! Rubik's analytical model is deliberately conservative (triangle-inequality
//! combination of compute and memory tails, conservative histogram bucketing),
//! so on its own it tends to undershoot the latency bound slightly and waste
//! a little power. The paper adds a simple PI controller (Sec. 4.2) that
//! observes the difference between measured and target tail latency over a
//! rolling 1-second window and nudges the *internal* latency target that the
//! analytical model aims for. The external bound is never relaxed by more
//! than the configured clamp.

use serde::{Deserialize, Serialize};

/// A proportional-integral controller on the internal latency target.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FeedbackController {
    /// Proportional gain (applied to the relative error).
    kp: f64,
    /// Integral gain.
    ki: f64,
    /// Accumulated integral of the relative error.
    integral: f64,
    /// Multiplier bounds for the internal target relative to the external
    /// bound.
    min_scale: f64,
    max_scale: f64,
    /// Current scale applied to the external bound.
    scale: f64,
}

impl FeedbackController {
    /// Creates a controller with the given gains and scale clamps.
    ///
    /// # Panics
    ///
    /// Panics if gains are negative or the clamp interval is empty or does
    /// not contain 1.0.
    pub fn new(kp: f64, ki: f64, min_scale: f64, max_scale: f64) -> Self {
        assert!(kp >= 0.0 && ki >= 0.0, "gains must be non-negative");
        assert!(
            min_scale > 0.0 && min_scale <= 1.0 && max_scale >= 1.0,
            "scale clamps must bracket 1.0"
        );
        Self {
            kp,
            ki,
            integral: 0.0,
            min_scale,
            max_scale,
            scale: 1.0,
        }
    }

    /// Gains and clamps that work well for the workloads in this
    /// reproduction; adjustments are minor because the analytical model needs
    /// little correction (paper Sec. 4.2).
    pub fn paper_default() -> Self {
        Self::new(0.3, 0.1, 0.4, 1.3)
    }

    /// The current scale applied to the external latency bound.
    pub fn scale(&self) -> f64 {
        self.scale
    }

    /// The internal latency target for the given external bound.
    pub fn internal_target(&self, bound: f64) -> f64 {
        self.scale * bound
    }

    /// Updates the controller with the latest measured tail latency against
    /// the external bound. Call this once per adjustment window (1 s in the
    /// paper). Returns the new scale.
    ///
    /// A measured tail *below* the bound means the model was conservative:
    /// the scale rises (towards `max_scale`) so Rubik runs slower. A measured
    /// tail *above* the bound pulls the scale down so Rubik speeds up.
    pub fn update(&mut self, measured_tail: f64, bound: f64) -> f64 {
        assert!(bound > 0.0, "latency bound must be positive");
        if measured_tail <= 0.0 {
            return self.scale;
        }
        // Relative error: positive when there is headroom.
        let error = (bound - measured_tail) / bound;
        self.integral = (self.integral + error).clamp(-3.0, 3.0);
        let adjustment = self.kp * error + self.ki * self.integral;
        self.scale = (1.0 + adjustment).clamp(self.min_scale, self.max_scale);
        self.scale
    }

    /// Resets the controller to its neutral state.
    pub fn reset(&mut self) {
        self.integral = 0.0;
        self.scale = 1.0;
    }
}

impl Default for FeedbackController {
    fn default() -> Self {
        Self::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn headroom_raises_the_internal_target() {
        let mut c = FeedbackController::paper_default();
        // Measured tail well under the bound: the model is conservative.
        for _ in 0..10 {
            c.update(0.5e-3, 1.0e-3);
        }
        assert!(c.scale() > 1.0);
        assert!(c.internal_target(1.0e-3) > 1.0e-3);
    }

    #[test]
    fn violations_lower_the_internal_target() {
        let mut c = FeedbackController::paper_default();
        for _ in 0..10 {
            c.update(1.5e-3, 1.0e-3);
        }
        assert!(c.scale() < 1.0);
    }

    #[test]
    fn scale_is_clamped() {
        let mut c = FeedbackController::new(10.0, 10.0, 0.4, 1.3);
        for _ in 0..100 {
            c.update(0.01e-3, 1.0e-3);
        }
        assert!(c.scale() <= 1.3 + 1e-12);
        for _ in 0..100 {
            c.update(100e-3, 1.0e-3);
        }
        assert!(c.scale() >= 0.4 - 1e-12);
    }

    #[test]
    fn on_target_measurement_keeps_scale_near_one() {
        let mut c = FeedbackController::paper_default();
        for _ in 0..20 {
            c.update(1.0e-3, 1.0e-3);
        }
        assert!((c.scale() - 1.0).abs() < 0.05);
    }

    #[test]
    fn zero_measurement_is_ignored() {
        let mut c = FeedbackController::paper_default();
        let before = c.scale();
        c.update(0.0, 1.0e-3);
        assert_eq!(c.scale(), before);
    }

    #[test]
    fn reset_restores_neutral_state() {
        let mut c = FeedbackController::paper_default();
        c.update(0.2e-3, 1.0e-3);
        c.reset();
        assert_eq!(c.scale(), 1.0);
    }

    #[test]
    #[should_panic(expected = "bracket")]
    fn rejects_clamps_not_bracketing_one() {
        let _ = FeedbackController::new(0.1, 0.1, 1.1, 1.3);
    }
}
