//! The fault-injection contract, property-tested:
//!
//! 1. **An empty plan is bit-neutral.** A cluster with an empty
//!    [`FaultPlan`] and an inert [`RequestPolicy`] attached is **bitwise
//!    identical** to a plain cluster across `router × fleet × seed` grids —
//!    and the grids themselves are bit-identical at 1, 2, and 8 sweep
//!    threads.
//! 2. **Fault runs are deterministic.** A non-trivial plan (crashes,
//!    recoveries, stragglers) with timeouts and jittered retries produces
//!    the same bits at any sweep thread count.
//! 3. **Faults conserve requests.** Every offered request either completes
//!    exactly once (with its original id and arrival time) or is counted
//!    lost — never duplicated, never silently dropped.
//! 4. **The cap holds through a crash wave.** A capped fleet that loses
//!    servers mid-run keeps every epoch window within one DVFS step of the
//!    budget, before, during, and after the outage.
//! 5. **The failure-aware stack earns its keep.** Health-aware routing plus
//!    timeouts and retries strictly cuts deadline violations against a
//!    failure-blind baseline on the same fault schedule.
//!
//! Plus: [`HealthAware`] is bitwise invisible on an all-healthy fleet.

use rubik_cluster::{
    fleet_trace, Cluster, ClusterOutcome, FaultPlan, HealthAware, JoinShortestQueue, PegasusFleet,
    PowerAware, RequestPolicy, RoundRobin, Router, ThresholdMigrator,
};
use rubik_core::{RubikConfig, RubikController};
use rubik_power::CorePowerModel;
use rubik_sim::{DvfsConfig, FixedFrequencyPolicy, RunResult, SimConfig, Trace};
use rubik_sweep::{SweepExecutor, SweepSpec};
use rubik_workloads::AppProfile;

fn result_bits(r: &RunResult) -> Vec<u64> {
    let mut bits = vec![r.end_time().to_bits()];
    for rec in r.records() {
        bits.extend_from_slice(&[
            rec.id,
            rec.arrival.to_bits(),
            rec.start.to_bits(),
            rec.completion.to_bits(),
            rec.queue_len_at_arrival as u64,
        ]);
    }
    for s in r.segments() {
        bits.extend_from_slice(&[
            s.start.to_bits(),
            s.end.to_bits(),
            s.freq.mhz() as u64,
            s.activity as u64,
        ]);
    }
    bits
}

fn outcome_bits(o: &ClusterOutcome) -> Vec<u64> {
    let a = &o.availability;
    let mut bits = vec![
        o.requests as u64,
        o.migrated_requests as u64,
        o.tail_latency.to_bits(),
        o.mean_latency.to_bits(),
        o.fleet_energy.to_bits(),
        o.fleet_power.to_bits(),
        o.duration.to_bits(),
        a.offered as u64,
        a.completed as u64,
        a.goodput as u64,
        a.lost as u64,
        a.deadline_exceeded as u64,
        a.timeouts as u64,
        a.retries as u64,
        a.requeued_on_failure as u64,
        a.salvaged_in_flight as u64,
        a.hedged as u64,
        a.hedge_wins as u64,
        a.hedge_cancelled as u64,
        a.tail_latency_ok.map_or(u64::MAX, f64::to_bits),
    ];
    for s in &o.per_server {
        bits.extend_from_slice(&[
            s.class as u64,
            s.requests as u64,
            s.tail_latency.to_bits(),
            s.energy.to_bits(),
            s.busy_time.to_bits(),
            s.idle_time.to_bits(),
            s.sleep_time.to_bits(),
            s.end_time.to_bits(),
            s.downtime.to_bits(),
        ]);
    }
    bits
}

fn routers() -> Vec<Box<dyn Router>> {
    vec![
        Box::new(RoundRobin::new()),
        Box::new(JoinShortestQueue::new()),
        Box::new(PowerAware::default()),
    ]
}

fn rubik_factory<'a>(
    config: &'a SimConfig,
    trace: &'a Trace,
    bound: f64,
) -> impl Fn(usize) -> RubikController + 'a {
    move |_| {
        RubikController::seeded_for_trace(
            RubikConfig::new(bound).with_profiling_window(1024),
            config.dvfs.clone(),
            trace,
            256,
        )
    }
}

// ---------------------------------------------------------------------------
// Property 1: an empty plan and an inert policy are bitwise invisible.
// ---------------------------------------------------------------------------

#[test]
fn empty_fault_plan_and_inert_policy_are_bitwise_invisible() {
    let fleets = [2usize, 6];
    let seeds = [11u64, 97];
    let spec = SweepSpec::new()
        .axis("router", routers().len())
        .axis("fleet", fleets.len())
        .axis("seed", seeds.len());

    let cell = |c: &rubik_sweep::Cell<'_>| {
        let config = SimConfig::paper_simulated();
        let profile = AppProfile::masstree();
        let bound = 3.0 * profile.mean_service_time();
        let fleet = fleets[c.get("fleet")];
        let trace = fleet_trace(&profile, 0.5, fleet, 120 * fleet, seeds[c.get("seed")]);

        let plain = Cluster::new(
            config.clone(),
            fleet,
            routers().swap_remove(c.get("router")),
            rubik_factory(&config, &trace, bound),
        );
        let (plain_outcome, plain_results) = plain.run_with_results(&trace);

        let faulted = Cluster::new(
            config.clone(),
            fleet,
            routers().swap_remove(c.get("router")),
            rubik_factory(&config, &trace, bound),
        )
        .with_fault_plan(FaultPlan::new())
        .with_request_policy(RequestPolicy::new());
        let (faulted_outcome, faulted_results) = faulted.run_with_results(&trace);

        // Same simulation, byte for byte...
        assert_eq!(
            outcome_bits(&plain_outcome),
            outcome_bits(&faulted_outcome),
            "an empty plan changed the ClusterOutcome (cell {})",
            c.index()
        );
        for (i, (p, f)) in plain_results.iter().zip(&faulted_results).enumerate() {
            assert_eq!(
                result_bits(p),
                result_bits(f),
                "an empty plan changed server {i}'s RunResult (cell {})",
                c.index()
            );
        }
        // ...and the availability block is the all-is-well identity.
        let a = faulted_outcome.availability;
        assert_eq!(a.offered, trace.len());
        assert_eq!(a.completed, trace.len());
        assert_eq!(a.goodput, trace.len());
        assert_eq!(
            (a.lost, a.deadline_exceeded, a.timeouts, a.retries),
            (0, 0, 0, 0)
        );
        assert_eq!(a.goodput_fraction(), 1.0);
        assert_eq!(
            a.tail_latency_ok
                .expect("every request completed in deadline")
                .to_bits(),
            faulted_outcome.tail_latency.to_bits(),
            "with no deadline, the goodput tail is the plain tail"
        );
        assert!(faulted_outcome.per_server.iter().all(|s| s.downtime == 0.0));
        outcome_bits(&faulted_outcome)
    };

    let reference = SweepExecutor::serial().run(&spec, cell).into_results();
    for threads in [2usize, 8] {
        let swept = SweepExecutor::new(threads).run(&spec, cell).into_results();
        assert_eq!(swept, reference, "grid diverged at {threads} threads");
    }
}

// ---------------------------------------------------------------------------
// Property 2 + 3: fault runs are thread-invariant and conserve requests.
// ---------------------------------------------------------------------------

/// A plan that exercises every op: a crash with recovery, a straggler
/// window, and a stuck frequency, timed relative to the trace.
fn eventful_plan(duration: f64, fleet: usize) -> FaultPlan {
    let mut plan = FaultPlan::new()
        .crash(0, 0.25 * duration)
        .recover(0, 0.70 * duration)
        .straggle(1 % fleet.max(1), 0.10 * duration, 0.60 * duration, 4.0);
    if fleet > 2 {
        plan = plan
            .stick_freq(2, 0.20 * duration, Some(rubik_sim::Freq::from_mhz(1200)))
            .recover(2, 0.80 * duration);
    }
    plan
}

#[test]
fn fault_runs_are_deterministic_across_sweep_threads_and_conserve_requests() {
    let fleets = [3usize, 5];
    let seeds = [1u64, 42];
    let spec = SweepSpec::new()
        .axis("fleet", fleets.len())
        .axis("seed", seeds.len());

    let cell = |c: &rubik_sweep::Cell<'_>| {
        let config = SimConfig::paper_simulated();
        let profile = AppProfile::masstree();
        let fleet = fleets[c.get("fleet")];
        let requests = 150 * fleet;
        let trace = fleet_trace(&profile, 0.5, fleet, requests, seeds[c.get("seed")]);
        let mean = profile.mean_service_time();

        let cluster = Cluster::new(
            config.clone(),
            fleet,
            Box::new(HealthAware::new(JoinShortestQueue::new())),
            |_| FixedFrequencyPolicy::new(config.dvfs.nominal()),
        )
        .with_fault_plan(eventful_plan(trace.duration(), fleet))
        .with_request_policy(
            RequestPolicy::new()
                .with_timeout(8.0 * mean)
                .with_retries(6, mean, 16.0 * mean)
                .with_jitter_seed(seeds[c.get("seed")])
                .salvaging_in_flight()
                .draining_on_crash(),
        );
        let (outcome, results) = cluster.run_with_results(&trace);
        let a = outcome.availability;

        // Conservation: completions and losses partition the offered load,
        // and every completed id is unique with its original arrival.
        assert_eq!(a.offered, requests);
        assert_eq!(a.completed + a.lost, a.offered);
        let mut seen: Vec<(u64, u64)> = results
            .iter()
            .flat_map(|r| {
                r.records()
                    .iter()
                    .map(|rec| (rec.id, rec.arrival.to_bits()))
            })
            .collect();
        seen.sort_unstable();
        assert_eq!(seen.len(), a.completed, "records disagree with the stats");
        for w in seen.windows(2) {
            assert_ne!(w[0].0, w[1].0, "request {} completed twice", w[0].0);
        }
        for &(id, arrival) in &seen {
            assert_eq!(
                arrival,
                trace.requests()[id as usize].arrival.to_bits(),
                "request {id} lost its original arrival through the faults"
            );
        }
        // The fault window overloads the survivors (one straggler, one stuck
        // slow), so the rescue stack has real work: timeouts fire, retries
        // run, and most of the load still lands.
        if fleet == 3 {
            // The 3-server cells lose a third of their capacity to the crash
            // and more to the straggler, so every rescue path gets exercised.
            assert!(a.timeouts > 0, "the timeout path never fired");
            assert!(a.retries > 0, "the retry path never fired");
        }
        assert!(
            a.completed >= 4 * a.offered / 5,
            "rescue collapsed: {} of {} completed",
            a.completed,
            a.offered
        );
        assert!(
            outcome.per_server[0].downtime > 0.0,
            "the crashed server accrued downtime"
        );
        assert_eq!(
            outcome
                .per_server
                .iter()
                .filter(|s| s.downtime > 0.0)
                .count(),
            1,
            "only the crashed server was ever down"
        );
        outcome_bits(&outcome)
    };

    let reference = SweepExecutor::serial().run(&spec, cell).into_results();
    for threads in [2usize, 8] {
        let swept = SweepExecutor::new(threads).run(&spec, cell).into_results();
        assert_eq!(
            swept, reference,
            "faulted grid diverged at {threads} threads"
        );
    }
}

// ---------------------------------------------------------------------------
// Property 4: the watt cap holds through a crash wave.
// ---------------------------------------------------------------------------

fn window_power(results: &[RunResult], power: &CorePowerModel, from: f64, to: f64) -> f64 {
    let energy: f64 = results
        .iter()
        .map(|r| power.energy(&r.freq_residency_between(from, to)).total())
        .sum();
    energy / (to - from)
}

fn step_granularity(dvfs: &DvfsConfig, power: &CorePowerModel) -> f64 {
    dvfs.levels()
        .windows(2)
        .map(|w| power.active_power(w[1]) - power.active_power(w[0]))
        .fold(0.0, f64::max)
}

#[test]
fn the_watt_cap_holds_through_a_crash_wave() {
    let fleet = 6usize;
    let config = SimConfig::paper_simulated();
    let power = CorePowerModel::haswell_like();
    let profile = AppProfile::masstree();
    let bound = 3.0 * profile.mean_service_time();
    let budget = 3.5 * fleet as f64;
    let floor = fleet as f64 * power.active_power(config.dvfs.min());
    let step = step_granularity(&config.dvfs, &power);

    let trace = fleet_trace(&profile, 0.6, fleet, 300 * fleet, 23);
    let duration = trace.duration();
    // ~40 control epochs across the run, whatever the trace duration is.
    let epoch = duration / 40.0;
    // Two servers die a third of the way in and come back at two thirds.
    let plan = FaultPlan::new()
        .crash(0, 0.33 * duration)
        .crash(1, 0.34 * duration)
        .recover(0, 0.66 * duration)
        .recover(1, 0.67 * duration);

    let cluster = Cluster::new(
        config.clone(),
        fleet,
        Box::new(HealthAware::new(JoinShortestQueue::new())),
        rubik_factory(&config, &trace, bound),
    )
    .with_power(power)
    .with_fleet_controller(Box::new(PegasusFleet::new(budget, power).with_epoch(epoch)))
    .with_fault_plan(plan)
    .with_request_policy(
        RequestPolicy::new()
            .with_timeout(8.0 * bound)
            .with_retries(4, bound, 8.0 * bound)
            .salvaging_in_flight()
            .draining_on_crash(),
    );
    let (outcome, results) = cluster.run_with_results(&trace);
    let a = &outcome.availability;
    assert_eq!(a.completed + a.lost, a.offered);
    assert!(
        a.completed >= 4 * a.offered / 5,
        "the capped survivors still served the bulk: {} of {}",
        a.completed,
        a.offered
    );
    assert!(outcome.per_server[0].downtime > 0.0);
    assert!(outcome.per_server[1].downtime > 0.0);

    // Every epoch window respects the cap — including the windows where
    // two servers are down and the survivors absorbed their share.
    let end = outcome.duration;
    let mut from = 0.0;
    let mut epochs = 0;
    while from < end {
        let to = (from + epoch).min(end);
        let measured = window_power(&results, &power, from, to);
        assert!(
            measured <= budget.max(floor) + step + 1e-6,
            "epoch [{from:.3}, {to:.3}) drew {measured:.3} W against {budget:.3} W \
             through the crash wave"
        );
        from = to;
        epochs += 1;
    }
    assert!(epochs >= 8, "the run must span several epochs");
}

// ---------------------------------------------------------------------------
// Property 5: health-aware routing + retries beat a failure-blind stack.
// ---------------------------------------------------------------------------

#[test]
fn health_aware_retries_cut_deadline_violations_versus_failure_blind() {
    let fleet = 4usize;
    let config = SimConfig::paper_simulated();
    let profile = AppProfile::masstree();
    let mean = profile.mean_service_time();
    let trace = fleet_trace(&profile, 0.5, fleet, 150 * fleet, 7);
    let duration = trace.duration();
    // One server is dead for the middle 40% of the run. Round-robin keeps
    // offering it work regardless; the stranded queue waits for recovery.
    let plan = FaultPlan::new()
        .crash(2, 0.30 * duration)
        .recover(2, 0.70 * duration);
    let deadline = 12.0 * mean;

    let blind = Cluster::new(config.clone(), fleet, Box::new(RoundRobin::new()), |_| {
        FixedFrequencyPolicy::new(config.dvfs.nominal())
    })
    .with_fault_plan(plan.clone())
    .with_request_policy(RequestPolicy::new().with_deadline(deadline));
    let blind_out = blind.run(&trace);

    let aware = Cluster::new(
        config.clone(),
        fleet,
        Box::new(HealthAware::new(RoundRobin::new())),
        |_| FixedFrequencyPolicy::new(config.dvfs.nominal()),
    )
    .with_fault_plan(plan)
    .with_request_policy(
        RequestPolicy::new()
            .with_deadline(deadline)
            .with_timeout(4.0 * mean)
            .with_retries(5, mean, 8.0 * mean)
            .salvaging_in_flight()
            .draining_on_crash(),
    );
    let aware_out = aware.run(&trace);

    let b = blind_out.availability;
    let a = aware_out.availability;
    assert_eq!(b.offered, a.offered);
    assert!(
        b.deadline_exceeded > 0,
        "the blind stack must actually suffer here"
    );
    assert!(
        a.deadline_exceeded < b.deadline_exceeded,
        "health-aware + retries must cut deadline violations \
         ({} vs {} blind)",
        a.deadline_exceeded,
        b.deadline_exceeded
    );
    assert!(
        a.goodput_fraction() > b.goodput_fraction(),
        "goodput must improve ({} vs {})",
        a.goodput_fraction(),
        b.goodput_fraction()
    );
}

// ---------------------------------------------------------------------------
// HealthAware is invisible on a healthy fleet.
// ---------------------------------------------------------------------------

#[test]
fn health_aware_wrapper_is_bitwise_invisible_on_a_healthy_fleet() {
    let config = SimConfig::paper_simulated();
    let profile = AppProfile::masstree();
    let trace = fleet_trace(&profile, 0.5, 4, 600, 19);

    let inner: Vec<Box<dyn Router>> = vec![
        Box::new(JoinShortestQueue::new()),
        Box::new(PowerAware::default()),
    ];
    let wrapped: Vec<Box<dyn Router>> = vec![
        Box::new(HealthAware::new(JoinShortestQueue::new())),
        Box::new(HealthAware::new(PowerAware::default())),
    ];
    for (inner, wrapped) in inner.into_iter().zip(wrapped) {
        let plain = Cluster::new(config.clone(), 4, inner, |_| {
            FixedFrequencyPolicy::new(config.dvfs.nominal())
        })
        // Hooks attached to prove the wrapper composes with the rest.
        .with_migrator(Box::new(ThresholdMigrator::new(usize::MAX, 0)));
        let (o1, r1) = plain.run_with_results(&trace);

        let guarded = Cluster::new(config.clone(), 4, wrapped, |_| {
            FixedFrequencyPolicy::new(config.dvfs.nominal())
        })
        .with_migrator(Box::new(ThresholdMigrator::new(usize::MAX, 0)));
        let (o2, r2) = guarded.run_with_results(&trace);

        assert_eq!(outcome_bits(&o1), outcome_bits(&o2));
        for (a, b) in r1.iter().zip(&r2) {
            assert_eq!(result_bits(a), result_bits(b));
        }
    }
}
