//! Self-serialized JSON for [`TraceLog`] — writer and minimal parser.
//!
//! The build environment is offline, so (like the vendored `criterion`)
//! serialization is hand-rolled: [`to_json`] emits a stable `rubik-trace-v1`
//! document and [`from_json`] reads it back with a small recursive-descent
//! parser. Floats are written with Rust's shortest-roundtrip `{:?}`
//! formatting, so a write → read cycle is lossless.
//!
//! Request ids are carried as JSON numbers and parsed through `f64`, which
//! is exact for ids below 2^53 — far beyond any trace this crate produces.

use crate::event::{RequestEvent, RequestEventKind, ServerEvent, ServerEventKind};
use crate::fleet::{EpochSample, ServerSample};
use crate::log::{RequestTrace, TraceLog};

/// Format tag written into every document.
pub const FORMAT: &str = "rubik-trace-v1";

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

fn push_f64(out: &mut String, v: f64) {
    debug_assert!(v.is_finite(), "trace times and powers are finite");
    out.push_str(&format!("{v:?}"));
}

fn push_request_event(out: &mut String, event: &RequestEvent) {
    out.push_str("{\"at\":");
    push_f64(out, event.at);
    match event.kind {
        RequestEventKind::Routed { server, attempt } => {
            out.push_str(&format!(
                ",\"kind\":\"routed\",\"server\":{server},\"attempt\":{attempt}"
            ));
        }
        RequestEventKind::TimedOut { server, attempt } => {
            out.push_str(&format!(
                ",\"kind\":\"timed_out\",\"server\":{server},\"attempt\":{attempt}"
            ));
        }
        RequestEventKind::Backoff { until } => {
            out.push_str(",\"kind\":\"backoff\",\"until\":");
            push_f64(out, until);
        }
        RequestEventKind::Salvaged { server } => {
            out.push_str(&format!(",\"kind\":\"salvaged\",\"server\":{server}"));
        }
        RequestEventKind::Requeued { from, to } => {
            out.push_str(&format!(
                ",\"kind\":\"requeued\",\"from\":{from},\"to\":{to}"
            ));
        }
        RequestEventKind::Migrated { from, to } => {
            out.push_str(&format!(
                ",\"kind\":\"migrated\",\"from\":{from},\"to\":{to}"
            ));
        }
        RequestEventKind::Dropped { server } => {
            out.push_str(&format!(",\"kind\":\"dropped\",\"server\":{server}"));
        }
        RequestEventKind::Hedged { server, attempt } => {
            out.push_str(&format!(
                ",\"kind\":\"hedged\",\"server\":{server},\"attempt\":{attempt}"
            ));
        }
        RequestEventKind::HedgeWon { server } => {
            out.push_str(&format!(",\"kind\":\"hedge_won\",\"server\":{server}"));
        }
        RequestEventKind::HedgeCancelled { server } => {
            out.push_str(&format!(
                ",\"kind\":\"hedge_cancelled\",\"server\":{server}"
            ));
        }
    }
    out.push('}');
}

fn push_server_event(out: &mut String, event: &ServerEvent) {
    out.push_str("{\"at\":");
    push_f64(out, event.at);
    out.push_str(&format!(",\"server\":{}", event.server));
    match event.kind {
        ServerEventKind::Down => out.push_str(",\"kind\":\"down\""),
        ServerEventKind::Up => out.push_str(",\"kind\":\"up\""),
        ServerEventKind::StraggleStart { slowdown } => {
            out.push_str(",\"kind\":\"straggle_start\",\"slowdown\":");
            push_f64(out, slowdown);
        }
        ServerEventKind::StraggleEnd => out.push_str(",\"kind\":\"straggle_end\""),
        ServerEventKind::FreqStuck { mhz } => {
            out.push_str(",\"kind\":\"freq_stuck\",\"mhz\":");
            match mhz {
                Some(mhz) => out.push_str(&mhz.to_string()),
                None => out.push_str("null"),
            }
        }
    }
    out.push('}');
}

fn push_opt_f64(out: &mut String, v: Option<f64>) {
    match v {
        Some(v) => push_f64(out, v),
        None => out.push_str("null"),
    }
}

fn push_request(out: &mut String, request: &RequestTrace) {
    out.push_str(&format!("{{\"id\":{},\"arrival\":", request.id));
    push_f64(out, request.arrival);
    out.push_str(",\"start\":");
    push_opt_f64(out, request.start);
    out.push_str(",\"completion\":");
    push_opt_f64(out, request.completion);
    out.push_str(",\"server\":");
    match request.server {
        Some(server) => out.push_str(&server.to_string()),
        None => out.push_str("null"),
    }
    out.push_str(",\"events\":[");
    for (i, event) in request.events.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        push_request_event(out, event);
    }
    out.push_str("]}");
}

fn push_epoch(out: &mut String, epoch: &EpochSample) {
    out.push_str("{\"start\":");
    push_f64(out, epoch.start);
    out.push_str(",\"end\":");
    push_f64(out, epoch.end);
    out.push_str(",\"power\":");
    push_f64(out, epoch.power);
    out.push_str(&format!(
        ",\"queued\":{},\"in_flight\":{},\"completions\":{},\"retries\":{},\"timeouts\":{}",
        epoch.queued, epoch.in_flight, epoch.completions, epoch.retries, epoch.timeouts
    ));
    out.push_str(",\"per_server\":[");
    for (i, server) in epoch.per_server.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"queued\":{},\"in_flight\":{},\"freq_mhz\":{},\"power\":",
            server.queued, server.in_flight, server.freq_mhz
        ));
        push_f64(out, server.power);
        out.push_str(&format!(",\"down\":{}}}", server.down));
    }
    out.push_str("]}");
}

/// Serialize a [`TraceLog`] as a `rubik-trace-v1` JSON document.
pub fn to_json(log: &TraceLog) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{{\"format\":\"{FORMAT}\",\"servers\":{},\"end\":",
        log.servers
    ));
    push_f64(&mut out, log.end);
    out.push_str(",\n\"requests\":[");
    for (i, request) in log.requests.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push('\n');
        push_request(&mut out, request);
    }
    out.push_str("],\n\"server_events\":[");
    for (i, event) in log.server_events.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push('\n');
        push_server_event(&mut out, event);
    }
    out.push_str("],\n\"epochs\":[");
    for (i, epoch) in log.epochs.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push('\n');
        push_epoch(&mut out, epoch);
    }
    out.push_str("]}\n");
    out
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

/// A parsed JSON value (just enough for trace documents).
#[derive(Debug, Clone, PartialEq)]
enum Value {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Value>),
    Obj(Vec<(String, Value)>),
}

impl Value {
    fn get<'a>(&'a self, key: &str) -> Result<&'a Value, String> {
        match self {
            Value::Obj(fields) => fields
                .iter()
                .find(|(k, _)| k == key)
                .map(|(_, v)| v)
                .ok_or_else(|| format!("missing field `{key}`")),
            _ => Err(format!("expected object with field `{key}`")),
        }
    }

    fn as_f64(&self) -> Result<f64, String> {
        match self {
            Value::Num(v) => Ok(*v),
            _ => Err("expected number".into()),
        }
    }

    fn as_u64(&self) -> Result<u64, String> {
        let v = self.as_f64()?;
        if v < 0.0 || v.fract() != 0.0 {
            return Err(format!("expected non-negative integer, got {v}"));
        }
        Ok(v as u64)
    }

    fn as_u32(&self) -> Result<u32, String> {
        u32::try_from(self.as_u64()?).map_err(|_| "integer out of u32 range".into())
    }

    fn as_opt_f64(&self) -> Result<Option<f64>, String> {
        match self {
            Value::Null => Ok(None),
            other => other.as_f64().map(Some),
        }
    }

    fn as_bool(&self) -> Result<bool, String> {
        match self {
            Value::Bool(b) => Ok(*b),
            _ => Err("expected bool".into()),
        }
    }

    fn as_str(&self) -> Result<&str, String> {
        match self {
            Value::Str(s) => Ok(s),
            _ => Err("expected string".into()),
        }
    }

    fn as_arr(&self) -> Result<&[Value], String> {
        match self {
            Value::Arr(items) => Ok(items),
            _ => Err("expected array".into()),
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(text: &'a str) -> Self {
        Self {
            bytes: text.as_bytes(),
            pos: 0,
        }
    }

    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| matches!(b, b' ' | b'\t' | b'\n' | b'\r'))
        {
            self.pos += 1;
        }
    }

    fn peek(&mut self) -> Result<u8, String> {
        self.skip_ws();
        self.bytes
            .get(self.pos)
            .copied()
            .ok_or_else(|| "unexpected end of input".into())
    }

    fn expect(&mut self, byte: u8) -> Result<(), String> {
        if self.peek()? == byte {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected `{}` at byte {}", byte as char, self.pos))
        }
    }

    fn expect_literal(&mut self, literal: &str, value: Value) -> Result<Value, String> {
        if self.bytes[self.pos..].starts_with(literal.as_bytes()) {
            self.pos += literal.len();
            Ok(value)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn parse_value(&mut self) -> Result<Value, String> {
        match self.peek()? {
            b'{' => self.parse_object(),
            b'[' => self.parse_array(),
            b'"' => Ok(Value::Str(self.parse_string()?)),
            b't' => self.expect_literal("true", Value::Bool(true)),
            b'f' => self.expect_literal("false", Value::Bool(false)),
            b'n' => self.expect_literal("null", Value::Null),
            _ => self.parse_number(),
        }
    }

    fn parse_object(&mut self) -> Result<Value, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        if self.peek()? == b'}' {
            self.pos += 1;
            return Ok(Value::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.expect(b':')?;
            let value = self.parse_value()?;
            fields.push((key, value));
            match self.peek()? {
                b',' => self.pos += 1,
                b'}' => {
                    self.pos += 1;
                    return Ok(Value::Obj(fields));
                }
                _ => return Err(format!("expected `,` or `}}` at byte {}", self.pos)),
            }
        }
    }

    fn parse_array(&mut self) -> Result<Value, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        if self.peek()? == b']' {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            items.push(self.parse_value()?);
            match self.peek()? {
                b',' => self.pos += 1,
                b']' => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(format!("expected `,` or `]` at byte {}", self.pos)),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self
                .bytes
                .get(self.pos)
                .copied()
                .ok_or("unterminated string")?
            {
                b'"' => {
                    self.pos += 1;
                    return Ok(out);
                }
                b'\\' => {
                    self.pos += 1;
                    let escape = self
                        .bytes
                        .get(self.pos)
                        .copied()
                        .ok_or("unterminated escape")?;
                    self.pos += 1;
                    match escape {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b't' => out.push('\t'),
                        b'r' => out.push('\r'),
                        other => return Err(format!("unsupported escape `\\{}`", other as char)),
                    }
                }
                _ => {
                    // Multi-byte UTF-8 sequences pass through byte-by-byte;
                    // re-validate at the end via from_utf8 on the slice.
                    let start = self.pos;
                    while self
                        .bytes
                        .get(self.pos)
                        .is_some_and(|&b| b != b'"' && b != b'\\')
                    {
                        self.pos += 1;
                    }
                    let chunk = std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|_| "invalid UTF-8 in string")?;
                    out.push_str(chunk);
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, String> {
        self.skip_ws();
        let start = self.pos;
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|&b| b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E'))
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| "invalid number".to_string())?;
        text.parse::<f64>()
            .map(Value::Num)
            .map_err(|_| format!("invalid number `{text}` at byte {start}"))
    }
}

fn parse_request_event(value: &Value) -> Result<RequestEvent, String> {
    let at = value.get("at")?.as_f64()?;
    let kind = match value.get("kind")?.as_str()? {
        "routed" => RequestEventKind::Routed {
            server: value.get("server")?.as_u32()?,
            attempt: value.get("attempt")?.as_u32()?,
        },
        "timed_out" => RequestEventKind::TimedOut {
            server: value.get("server")?.as_u32()?,
            attempt: value.get("attempt")?.as_u32()?,
        },
        "backoff" => RequestEventKind::Backoff {
            until: value.get("until")?.as_f64()?,
        },
        "salvaged" => RequestEventKind::Salvaged {
            server: value.get("server")?.as_u32()?,
        },
        "requeued" => RequestEventKind::Requeued {
            from: value.get("from")?.as_u32()?,
            to: value.get("to")?.as_u32()?,
        },
        "migrated" => RequestEventKind::Migrated {
            from: value.get("from")?.as_u32()?,
            to: value.get("to")?.as_u32()?,
        },
        "dropped" => RequestEventKind::Dropped {
            server: value.get("server")?.as_u32()?,
        },
        "hedged" => RequestEventKind::Hedged {
            server: value.get("server")?.as_u32()?,
            attempt: value.get("attempt")?.as_u32()?,
        },
        "hedge_won" => RequestEventKind::HedgeWon {
            server: value.get("server")?.as_u32()?,
        },
        "hedge_cancelled" => RequestEventKind::HedgeCancelled {
            server: value.get("server")?.as_u32()?,
        },
        other => return Err(format!("unknown request event kind `{other}`")),
    };
    Ok(RequestEvent { at, kind })
}

fn parse_server_event(value: &Value) -> Result<ServerEvent, String> {
    let at = value.get("at")?.as_f64()?;
    let server = value.get("server")?.as_u32()?;
    let kind = match value.get("kind")?.as_str()? {
        "down" => ServerEventKind::Down,
        "up" => ServerEventKind::Up,
        "straggle_start" => ServerEventKind::StraggleStart {
            slowdown: value.get("slowdown")?.as_f64()?,
        },
        "straggle_end" => ServerEventKind::StraggleEnd,
        "freq_stuck" => ServerEventKind::FreqStuck {
            mhz: match value.get("mhz")? {
                Value::Null => None,
                other => Some(other.as_u32()?),
            },
        },
        other => return Err(format!("unknown server event kind `{other}`")),
    };
    Ok(ServerEvent { at, server, kind })
}

fn parse_epoch(value: &Value) -> Result<EpochSample, String> {
    let mut per_server = Vec::new();
    for server in value.get("per_server")?.as_arr()? {
        per_server.push(ServerSample {
            queued: server.get("queued")?.as_u32()?,
            in_flight: server.get("in_flight")?.as_u32()?,
            freq_mhz: server.get("freq_mhz")?.as_u32()?,
            power: server.get("power")?.as_f64()?,
            down: server.get("down")?.as_bool()?,
        });
    }
    Ok(EpochSample {
        start: value.get("start")?.as_f64()?,
        end: value.get("end")?.as_f64()?,
        power: value.get("power")?.as_f64()?,
        queued: value.get("queued")?.as_u32()?,
        in_flight: value.get("in_flight")?.as_u32()?,
        completions: value.get("completions")?.as_u32()?,
        retries: value.get("retries")?.as_u64()?,
        timeouts: value.get("timeouts")?.as_u64()?,
        per_server,
    })
}

/// Parse a `rubik-trace-v1` JSON document back into a [`TraceLog`].
pub fn from_json(text: &str) -> Result<TraceLog, String> {
    let mut parser = Parser::new(text);
    let root = parser.parse_value()?;
    let format = root.get("format")?.as_str()?;
    if format != FORMAT {
        return Err(format!("unsupported trace format `{format}`"));
    }
    let mut requests = Vec::new();
    for request in root.get("requests")?.as_arr()? {
        let mut events = Vec::new();
        for event in request.get("events")?.as_arr()? {
            events.push(parse_request_event(event)?);
        }
        requests.push(RequestTrace {
            id: request.get("id")?.as_u64()?,
            arrival: request.get("arrival")?.as_f64()?,
            start: request.get("start")?.as_opt_f64()?,
            completion: request.get("completion")?.as_opt_f64()?,
            server: match request.get("server")? {
                Value::Null => None,
                other => Some(other.as_u32()?),
            },
            events,
        });
    }
    let mut server_events = Vec::new();
    for event in root.get("server_events")?.as_arr()? {
        server_events.push(parse_server_event(event)?);
    }
    let mut epochs = Vec::new();
    for epoch in root.get("epochs")?.as_arr()? {
        epochs.push(parse_epoch(epoch)?);
    }
    Ok(TraceLog {
        servers: root.get("servers")?.as_u64()? as usize,
        end: root.get("end")?.as_f64()?,
        requests,
        server_events,
        epochs,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_log() -> TraceLog {
        TraceLog {
            servers: 2,
            end: 1.5,
            requests: vec![
                RequestTrace {
                    id: 0,
                    arrival: 0.0,
                    start: Some(0.125),
                    completion: Some(0.25),
                    server: Some(1),
                    events: vec![
                        RequestEvent {
                            at: 0.0,
                            kind: RequestEventKind::Routed {
                                server: 0,
                                attempt: 1,
                            },
                        },
                        RequestEvent {
                            at: 0.05,
                            kind: RequestEventKind::TimedOut {
                                server: 0,
                                attempt: 1,
                            },
                        },
                        RequestEvent {
                            at: 0.05,
                            kind: RequestEventKind::Backoff { until: 0.1 },
                        },
                        RequestEvent {
                            at: 0.1,
                            kind: RequestEventKind::Routed {
                                server: 1,
                                attempt: 2,
                            },
                        },
                        RequestEvent {
                            at: 0.15,
                            kind: RequestEventKind::Hedged {
                                server: 0,
                                attempt: 2,
                            },
                        },
                        RequestEvent {
                            at: 0.25,
                            kind: RequestEventKind::HedgeWon { server: 1 },
                        },
                        RequestEvent {
                            at: 0.25,
                            kind: RequestEventKind::HedgeCancelled { server: 0 },
                        },
                    ],
                },
                RequestTrace {
                    id: 3,
                    arrival: 0.5,
                    start: None,
                    completion: None,
                    server: None,
                    events: vec![
                        RequestEvent {
                            at: 0.5,
                            kind: RequestEventKind::Migrated { from: 1, to: 0 },
                        },
                        RequestEvent {
                            at: 0.75,
                            kind: RequestEventKind::Salvaged { server: 0 },
                        },
                        RequestEvent {
                            at: 0.8,
                            kind: RequestEventKind::Requeued { from: 0, to: 1 },
                        },
                        RequestEvent {
                            at: 1.0,
                            kind: RequestEventKind::Dropped { server: 1 },
                        },
                    ],
                },
            ],
            server_events: vec![
                ServerEvent {
                    at: 0.7,
                    server: 0,
                    kind: ServerEventKind::Down,
                },
                ServerEvent {
                    at: 0.9,
                    server: 0,
                    kind: ServerEventKind::Up,
                },
                ServerEvent {
                    at: 0.2,
                    server: 1,
                    kind: ServerEventKind::StraggleStart { slowdown: 2.5 },
                },
                ServerEvent {
                    at: 0.4,
                    server: 1,
                    kind: ServerEventKind::StraggleEnd,
                },
                ServerEvent {
                    at: 0.6,
                    server: 1,
                    kind: ServerEventKind::FreqStuck { mhz: Some(1200) },
                },
                ServerEvent {
                    at: 0.8,
                    server: 1,
                    kind: ServerEventKind::FreqStuck { mhz: None },
                },
            ],
            epochs: vec![EpochSample {
                start: 0.0,
                end: 0.75,
                power: 12.5,
                queued: 3,
                in_flight: 4,
                completions: 1,
                retries: 1,
                timeouts: 1,
                per_server: vec![
                    ServerSample {
                        queued: 1,
                        in_flight: 2,
                        freq_mhz: 2400,
                        power: 7.5,
                        down: false,
                    },
                    ServerSample {
                        queued: 2,
                        in_flight: 2,
                        freq_mhz: 1200,
                        power: 5.0,
                        down: true,
                    },
                ],
            }],
        }
    }

    #[test]
    fn json_roundtrip_is_lossless() {
        let log = sample_log();
        let text = to_json(&log);
        let parsed = from_json(&text).expect("roundtrip parse");
        assert_eq!(parsed, log);
    }

    #[test]
    fn writer_output_is_stable() {
        // A second serialization of the same log is byte-identical — the
        // property golden trace fixtures rely on.
        let log = sample_log();
        assert_eq!(to_json(&log), to_json(&log));
    }

    #[test]
    fn rejects_foreign_formats() {
        let err = from_json("{\"format\":\"other\"}").unwrap_err();
        assert!(err.contains("unsupported trace format"));
    }

    #[test]
    fn rejects_malformed_documents() {
        assert!(from_json("").is_err());
        assert!(from_json("{\"format\":").is_err());
        assert!(from_json("[1, 2").is_err());
        assert!(from_json("{\"a\" 1}").is_err());
    }

    #[test]
    fn parser_handles_escapes_and_exponents() {
        let mut parser = Parser::new(r#"{"s":"a\"b\\c","n":-1.5e-3}"#);
        let value = parser.parse_value().unwrap();
        assert_eq!(value.get("s").unwrap().as_str().unwrap(), "a\"b\\c");
        assert_eq!(value.get("n").unwrap().as_f64().unwrap(), -1.5e-3);
    }
}
