//! Determinism contract of the parallel sweep engine, end-to-end on the
//! colocation grids: a parallel sweep at 1, 2, and 8 threads must return
//! **byte-identical** `ColocOutcome` / `DatacenterPoint` vectors to the
//! serial path, across seeds.
//!
//! Float equality is deliberately checked on the bit pattern
//! (`f64::to_bits`), not with a tolerance: the engine's contract is that
//! threading cannot be observed at all, not that it is "close".

use rubik_coloc::{
    ColocOutcome, ColocRunSpec, ColocScheme, ColocatedCore, DatacenterComparison, DatacenterConfig,
    DatacenterPoint,
};
use rubik_sweep::{SweepExecutor, SweepSpec};
use rubik_workloads::{AppProfile, BatchMix};

/// Byte-image of a `ColocOutcome`, comparable with `==` down to NaN
/// payloads.
fn outcome_bits(o: &ColocOutcome) -> [u64; 7] {
    [
        o.tail_latency.to_bits(),
        o.normalized_tail.to_bits(),
        o.lc_energy.to_bits(),
        o.batch_energy.to_bits(),
        o.batch_work.to_bits(),
        o.lc_utilization.to_bits(),
        o.duration.to_bits(),
    ]
}

/// Byte-image of a `DatacenterPoint`.
fn point_bits(p: &DatacenterPoint) -> [u64; 6] {
    [
        p.lc_load.to_bits(),
        p.segregated_power.to_bits(),
        p.coloc_power.to_bits(),
        p.segregated_servers as u64,
        p.coloc_servers as u64,
        p.worst_normalized_tail.to_bits(),
    ]
}

#[test]
fn coloc_grid_is_bit_identical_across_thread_counts() {
    let requests = 400;
    let core = ColocatedCore::new();
    let apps = AppProfile::all();
    let schemes = ColocScheme::all();
    let loads = [0.3, 0.6];

    for base_seed in [3u64, 2015] {
        let mixes = BatchMix::paper_mixes(base_seed);
        let bounds: Vec<f64> = apps
            .iter()
            .enumerate()
            .map(|(i, app)| core.latency_bound(app, requests, base_seed + i as u64))
            .collect();

        let spec = SweepSpec::new()
            .axis("scheme", schemes.len())
            .axis("app", apps.len())
            .axis("load", loads.len());
        let run_cell = |cell: &rubik_sweep::Cell<'_>| -> ColocOutcome {
            let (s, a, l) = (cell.get("scheme"), cell.get("app"), cell.get("load"));
            core.run(
                &ColocRunSpec::new(schemes[s], &apps[a], &mixes[a % mixes.len()], bounds[a])
                    .with_load(loads[l])
                    .with_requests(requests)
                    .with_seed(base_seed + cell.index() as u64),
            )
        };

        let serial: Vec<[u64; 7]> = SweepExecutor::serial()
            .run(&spec, run_cell)
            .into_results()
            .iter()
            .map(outcome_bits)
            .collect();
        for threads in [1usize, 2, 8] {
            let parallel: Vec<[u64; 7]> = SweepExecutor::new(threads)
                .run(&spec, run_cell)
                .into_results()
                .iter()
                .map(outcome_bits)
                .collect();
            assert_eq!(
                parallel, serial,
                "ColocOutcome grid diverged at {threads} threads, seed {base_seed}"
            );
        }
    }
}

/// Version-gated rebuilds are an optimization, not a behavior change:
/// skipping a rebuild whose input histograms are unchanged must leave every
/// `ColocOutcome` bit-identical to a controller that rebuilds on every tick.
/// RubikColoc cells across apps, loads, and seeds — low loads especially,
/// where long idle stretches between completions make ticks overlap an
/// unchanged profile and the gate actually fires.
#[test]
fn version_gated_rebuilds_match_forced_rebuilds_bitwise() {
    let requests = 400;
    let gated = ColocatedCore::new();
    let forced = ColocatedCore::new().with_forced_rubik_rebuilds(true);
    let apps = AppProfile::all();
    let loads = [0.1, 0.4, 0.7];

    for base_seed in [11u64, 2015] {
        let mixes = BatchMix::paper_mixes(base_seed);
        for (a, app) in apps.iter().enumerate() {
            let bound = gated.latency_bound(app, requests, base_seed + a as u64);
            for (l, &load) in loads.iter().enumerate() {
                let seed = base_seed + (a * 10 + l) as u64;
                let mix = &mixes[a % mixes.len()];
                let spec = ColocRunSpec::new(ColocScheme::RubikColoc, app, mix, bound)
                    .with_load(load)
                    .with_requests(requests)
                    .with_seed(seed);
                let g = gated.run(&spec);
                let f = forced.run(&spec);
                assert_eq!(
                    outcome_bits(&g),
                    outcome_bits(&f),
                    "gated vs forced rebuilds diverged: app {}, load {load}, seed {seed}",
                    app.name()
                );
            }
        }
    }
}

#[test]
fn datacenter_sweep_is_bit_identical_across_thread_counts() {
    let loads = [0.2, 0.5];
    for seed in [7u64, 41] {
        let mut config = DatacenterConfig::small();
        config.seed = seed;
        config.requests_per_sample = 300;
        let dc = DatacenterComparison::new(config);

        // Serial reference: the pre-engine code path (evaluate per load,
        // context rebuilt each call) — the engine must reproduce it exactly.
        let reference: Vec<[u64; 6]> = loads.iter().map(|&l| point_bits(&dc.evaluate(l))).collect();
        for threads in [1usize, 2, 8] {
            let swept: Vec<[u64; 6]> = dc
                .sweep_with_threads(&loads, threads)
                .iter()
                .map(point_bits)
                .collect();
            assert_eq!(
                swept, reference,
                "DatacenterPoint sweep diverged at {threads} threads, seed {seed}"
            );
        }
    }
}
