//! The streaming equivalence contract, property-tested across a
//! `router × fleet × fault-plan × seed` grid at 1, 2, and 8 sweep threads
//! (the PR 7/8 neutrality-suite style):
//!
//! 1. **`run_streamed(TraceSource::new(&trace))` is `run(&trace)`,
//!    bitwise.** Outcome and every per-server `RunResult` carry identical
//!    bit-images — the batch path is built on the streamed one, and this
//!    suite pins that they cannot drift apart.
//! 2. **A live `PoissonSource` is its collected trace.** Streaming
//!    arrivals straight from the generator (never materialized) produces
//!    the same bits as draining the twin source to a `Trace` first and
//!    replaying it.
//! 3. **Thread counts don't matter.** The whole grid of bit-images is
//!    identical under serial, 2-thread, and 8-thread sweep execution.

use rubik_cluster::{
    fleet_trace, Cluster, ClusterOutcome, FaultPlan, HealthAware, JoinShortestQueue, PegasusFleet,
    RequestPolicy, RoundRobin, Router, ThresholdMigrator, TraceSource,
};
use rubik_load::{drain_to_trace, PoissonSource};
use rubik_power::CorePowerModel;
use rubik_sim::{FixedFrequencyPolicy, RunResult, SimConfig};
use rubik_sweep::{SweepExecutor, SweepSpec};
use rubik_workloads::AppProfile;

fn result_bits(r: &RunResult) -> Vec<u64> {
    let mut bits = vec![r.end_time().to_bits()];
    for rec in r.records() {
        bits.extend_from_slice(&[
            rec.id,
            rec.arrival.to_bits(),
            rec.start.to_bits(),
            rec.completion.to_bits(),
            rec.queue_len_at_arrival as u64,
        ]);
    }
    for s in r.segments() {
        bits.extend_from_slice(&[
            s.start.to_bits(),
            s.end.to_bits(),
            s.freq.mhz() as u64,
            s.activity as u64,
        ]);
    }
    bits
}

fn outcome_bits(o: &ClusterOutcome) -> Vec<u64> {
    let a = &o.availability;
    let mut bits = vec![
        o.requests as u64,
        o.migrated_requests as u64,
        o.tail_latency.to_bits(),
        o.mean_latency.to_bits(),
        o.fleet_energy.to_bits(),
        o.fleet_power.to_bits(),
        o.duration.to_bits(),
        a.offered as u64,
        a.completed as u64,
        a.goodput as u64,
        a.lost as u64,
        a.deadline_exceeded as u64,
        a.timeouts as u64,
        a.retries as u64,
        a.requeued_on_failure as u64,
        a.salvaged_in_flight as u64,
        a.hedged as u64,
        a.hedge_wins as u64,
        a.hedge_cancelled as u64,
        a.tail_latency_ok.map_or(u64::MAX, f64::to_bits),
    ];
    for s in &o.per_server {
        bits.extend_from_slice(&[
            s.class as u64,
            s.requests as u64,
            s.tail_latency.to_bits(),
            s.energy.to_bits(),
            s.busy_time.to_bits(),
            s.idle_time.to_bits(),
            s.sleep_time.to_bits(),
            s.end_time.to_bits(),
        ]);
    }
    bits
}

fn router(which: usize) -> Box<dyn Router> {
    match which {
        0 => Box::new(HealthAware::new(JoinShortestQueue::new())),
        _ => Box::new(RoundRobin::new()),
    }
}

fn eventful_plan(duration: f64) -> FaultPlan {
    FaultPlan::new()
        .crash(0, 0.25 * duration)
        .recover(0, 0.70 * duration)
        .straggle(1, 0.10 * duration, 0.60 * duration, 4.0)
}

/// One fully-loaded cluster per grid cell: router, watt cap, migrator, and
/// (for half the grid) faults with timeouts and retries — equivalence is
/// proven against every boundary the driver sequences, not just the plain
/// event stream.
fn cell_cluster(
    config: &SimConfig,
    fleet: usize,
    which_router: usize,
    faulted: bool,
    duration: f64,
    seed: u64,
) -> Cluster<FixedFrequencyPolicy> {
    let power = CorePowerModel::haswell_like();
    let mean = AppProfile::masstree().mean_service_time();
    let mut cluster = Cluster::new(config.clone(), fleet, router(which_router), |_| {
        FixedFrequencyPolicy::new(config.dvfs.nominal())
    })
    .with_power(power)
    .with_fleet_controller(Box::new(
        PegasusFleet::new(4.0 * fleet as f64, power).with_epoch(duration / 20.0),
    ))
    .with_migrator(Box::new(ThresholdMigrator::default()));
    if faulted {
        cluster = cluster
            .with_fault_plan(eventful_plan(duration))
            .with_request_policy(
                RequestPolicy::new()
                    .with_timeout(8.0 * mean)
                    .with_retries(4, mean, 16.0 * mean)
                    .with_jitter_seed(seed)
                    .salvaging_in_flight()
                    .draining_on_crash(),
            );
    }
    cluster
}

#[test]
fn run_streamed_is_bitwise_identical_across_the_grid_and_thread_counts() {
    let fleets = [2usize, 4];
    let seeds = [7u64, 31];
    let spec = SweepSpec::new()
        .axis("router", 2)
        .axis("fleet", fleets.len())
        .axis("plan", 2)
        .axis("seed", seeds.len());

    let cell = |c: &rubik_sweep::Cell<'_>| {
        let config = SimConfig::paper_simulated();
        let fleet = fleets[c.get("fleet")];
        let seed = seeds[c.get("seed")];
        let faulted = c.get("plan") == 1;
        let requests = 100 * fleet;
        let trace = fleet_trace(&AppProfile::masstree(), 0.5, fleet, requests, seed);
        let duration = trace.duration();
        let build = || cell_cluster(&config, fleet, c.get("router"), faulted, duration, seed);

        // Contender 1: the classic batch path.
        let (batch_o, batch_r) = build().run_with_results(&trace);
        // Contender 2: the same trace adapted into a source.
        let (adapted_o, adapted_r) = build()
            .run_streamed_with_results(TraceSource::new(&trace))
            .expect("a Trace is time-ordered");
        // Contender 3: a live PoissonSource, never materialized. Its draws
        // are bit-identical to `fleet_trace` by construction, so this pins
        // generator-to-engine streaming end to end.
        let source = PoissonSource::new(AppProfile::masstree(), 0.5 * fleet as f64, requests, seed);
        let (live_o, live_r) = build()
            .run_streamed_with_results(source)
            .expect("a Poisson source is time-ordered");

        for (label, o, r) in [
            ("TraceSource", &adapted_o, &adapted_r),
            ("PoissonSource", &live_o, &live_r),
        ] {
            assert_eq!(
                outcome_bits(&batch_o),
                outcome_bits(o),
                "run_streamed({label}) changed the ClusterOutcome (cell {})",
                c.index()
            );
            assert_eq!(batch_r.len(), r.len());
            for (i, (b, s)) in batch_r.iter().zip(r).enumerate() {
                assert_eq!(
                    result_bits(b),
                    result_bits(s),
                    "run_streamed({label}) changed server {i}'s RunResult (cell {})",
                    c.index()
                );
            }
        }

        // Fold the full bit-image into the grid result so the cross-thread
        // comparison pins every record and segment, not just the outcome.
        let mut bits = outcome_bits(&batch_o);
        for r in &batch_r {
            bits.extend(result_bits(r));
        }
        bits
    };

    let reference = SweepExecutor::serial().run(&spec, cell).into_results();
    for threads in [2usize, 8] {
        let swept = SweepExecutor::new(threads).run(&spec, cell).into_results();
        assert_eq!(
            swept, reference,
            "stream equivalence grid diverged at {threads} threads"
        );
    }
}

/// A `PoissonSource` drained to a `Trace` is `fleet_trace`, and replaying
/// that trace is the same run as streaming the live source — the
/// three-way identity the satellite rewrite of `fleet_trace` rests on.
#[test]
fn drained_source_and_live_source_and_fleet_trace_agree() {
    let profile = AppProfile::xapian();
    let trace = fleet_trace(&profile, 0.4, 3, 300, 11);
    let drained = drain_to_trace(
        PoissonSource::new(profile.clone(), 0.4 * 3.0, 300, 11),
        None,
    );
    assert_eq!(trace.len(), drained.len());
    for (a, b) in trace.requests().iter().zip(drained.requests()) {
        assert_eq!(a.arrival.to_bits(), b.arrival.to_bits());
        assert_eq!(a.compute_cycles.to_bits(), b.compute_cycles.to_bits());
    }

    let config = SimConfig::paper_simulated();
    let build = || {
        Cluster::new(
            config.clone(),
            3,
            Box::new(JoinShortestQueue::new()),
            |_| FixedFrequencyPolicy::new(config.dvfs.nominal()),
        )
    };
    let batch = build().run(&trace);
    let streamed = build()
        .run_streamed(PoissonSource::new(profile.clone(), 0.4 * 3.0, 300, 11))
        .expect("a Poisson source is time-ordered");
    assert_eq!(outcome_bits(&batch), outcome_bits(&streamed));
}

/// Telemetry-carrying streamed runs mirror `run_traced`: same bits, same
/// serialized trace log.
#[test]
fn run_streamed_traced_matches_run_traced() {
    let profile = AppProfile::masstree();
    let trace = fleet_trace(&profile, 0.5, 2, 200, 7);
    let config = SimConfig::paper_simulated();
    let build = || {
        Cluster::new(config.clone(), 2, Box::new(RoundRobin::new()), |_| {
            FixedFrequencyPolicy::new(config.dvfs.nominal())
        })
    };
    let (batch_o, batch_r, batch_log) = build().run_traced(&trace);
    let (stream_o, stream_r, stream_log) = build()
        .run_streamed_traced(TraceSource::new(&trace))
        .expect("a Trace is time-ordered");
    assert_eq!(outcome_bits(&batch_o), outcome_bits(&stream_o));
    for (b, s) in batch_r.iter().zip(&stream_r) {
        assert_eq!(result_bits(b), result_bits(s));
    }
    assert_eq!(
        rubik_telemetry::to_json(&batch_log),
        rubik_telemetry::to_json(&stream_log)
    );
}

/// The driver enforces the `ArrivalSource` time-ordering contract as a
/// typed error on `run_streamed`'s result path — a misbehaving user source
/// is a reportable condition, not a panic and not silent garbage.
#[test]
fn run_streamed_rejects_out_of_order_sources() {
    struct Backwards(u64);
    impl rubik_cluster::ArrivalSource for Backwards {
        fn next_arrival(&mut self) -> Option<rubik_sim::RequestSpec> {
            if self.0 >= 2 {
                return None;
            }
            let spec = rubik_sim::RequestSpec {
                id: self.0,
                arrival: 1.0 - self.0 as f64 * 0.5,
                compute_cycles: 1e5,
                membound_time: 1e-5,
                class: 0,
            };
            self.0 += 1;
            Some(spec)
        }
    }
    let config = SimConfig::paper_simulated();
    let build = || {
        Cluster::new(config.clone(), 1, Box::new(RoundRobin::new()), |_| {
            FixedFrequencyPolicy::new(config.dvfs.nominal())
        })
    };
    let err = build()
        .run_streamed(Backwards(0))
        .expect_err("an out-of-order source must be rejected");
    match &err {
        &rubik_cluster::ClusterError::OutOfOrderArrival { index, at, prev } => {
            assert_eq!(index, 1);
            assert_eq!(at, 0.5);
            assert_eq!(prev, 1.0);
        }
        other => panic!("expected OutOfOrderArrival, got {other:?}"),
    }
    assert!(
        err.to_string().contains("time-ordered"),
        "error message should state the contract: {err}"
    );
    // The sharded path surfaces the same typed error.
    let sharded_err = build()
        .run_sharded_streamed(rubik_cluster::ShardSpec::new(2), Backwards(0))
        .expect_err("the sharded path must reject out-of-order sources too");
    assert!(matches!(
        sharded_err,
        rubik_cluster::ClusterError::OutOfOrderArrival { index: 1, .. }
    ));
}
