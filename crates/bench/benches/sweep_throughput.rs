//! Fleet-scale sweep throughput: serial vs N-thread wall time of the
//! paper-shaped colocation grid (5 apps × 20 batch mixes × 6 LC loads)
//! fanned out by `rubik-sweep`.
//!
//! Each cell is one `ColocatedCore::run` under RubikColoc — the same cell
//! the Fig. 15/16 experiments evaluate — over a shared immutable context
//! (profiles, mixes, precomputed latency bounds). The grid shape is the
//! paper's; the per-cell request count is reduced (env-tunable) so the
//! bench finishes in CI.
//!
//! Results merge into `BENCH_controller.json` like the other controller
//! benches, and a `BENCH_sweep.json` summary (serial vs parallel wall time
//! and speedup per thread count) is written for later PRs to regress
//! against. Speedup tracks the host: on a single-core runner it is ~1×, on
//! a 4+-core runner the acceptance bar is ≥ 2×.
//!
//! Env knobs: `RUBIK_SWEEP_BENCH_REQUESTS` (default 120) scales per-cell
//! work; `RUBIK_BENCH_SAMPLE_MS` / `RUBIK_BENCH_SAMPLES` are the usual
//! criterion smoke knobs.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use rubik::coloc::ColocRunSpec;
use rubik::{AppProfile, BatchMix, ColocScheme, ColocatedCore, SweepExecutor, SweepSpec};

const BENCH_JSON: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_controller.json");
const SWEEP_JSON: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_sweep.json");

const APPS: usize = 5;
const MIXES: usize = 20;
const LOADS: usize = 6;

fn requests_per_cell() -> usize {
    std::env::var("RUBIK_SWEEP_BENCH_REQUESTS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(120)
}

/// The shared immutable context every cell closure captures.
struct GridContext {
    core: ColocatedCore,
    apps: Vec<AppProfile>,
    mixes: Vec<BatchMix>,
    bounds: Vec<f64>,
    loads: [f64; LOADS],
    requests: usize,
}

fn build_context() -> GridContext {
    let requests = requests_per_cell();
    let core = ColocatedCore::new();
    let apps = AppProfile::all();
    assert_eq!(apps.len(), APPS, "paper grid expects {APPS} LC apps");
    let mixes = BatchMix::paper_mixes(2015);
    let bounds: Vec<f64> = apps
        .iter()
        .enumerate()
        .map(|(i, app)| core.latency_bound(app, requests, 10 + i as u64))
        .collect();
    GridContext {
        core,
        apps,
        mixes,
        bounds,
        loads: [0.1, 0.2, 0.3, 0.4, 0.5, 0.6],
        requests,
    }
}

/// One full grid pass at the given thread count; returns a checksum so the
/// work cannot be optimized away.
fn run_grid(ctx: &GridContext, threads: usize) -> f64 {
    let spec = SweepSpec::new()
        .axis("app", APPS)
        .axis("mix", MIXES)
        .axis("load", LOADS);
    let outcomes = SweepExecutor::new(threads)
        .run(&spec, |cell| {
            let (a, m, l) = (cell.get("app"), cell.get("mix"), cell.get("load"));
            ctx.core
                .run(
                    &ColocRunSpec::new(
                        ColocScheme::RubikColoc,
                        &ctx.apps[a],
                        &ctx.mixes[m % ctx.mixes.len()],
                        ctx.bounds[a],
                    )
                    .with_load(ctx.loads[l])
                    .with_requests(ctx.requests)
                    .with_seed((100 + a * 100 + m * 10 + l) as u64),
                )
                .normalized_tail
        })
        .into_results();
    outcomes.iter().sum()
}

fn thread_counts() -> Vec<usize> {
    let host = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let mut counts = vec![2, 4];
    if !counts.contains(&host) && host > 1 {
        counts.push(host);
    }
    counts
}

fn bench_sweep_throughput(c: &mut Criterion) {
    let ctx = build_context();
    let mut group = c.benchmark_group("sweep_throughput");

    group.bench_function("serial_5x20x6", |b| b.iter(|| run_grid(&ctx, 1)));
    for threads in thread_counts() {
        group.bench_with_input(
            BenchmarkId::new("threads_5x20x6", threads),
            &threads,
            |b, &threads| b.iter(|| run_grid(&ctx, threads)),
        );
    }
    group.finish();

    write_sweep_summary(c);
}

/// Distills the group's results into `BENCH_sweep.json` so later PRs can
/// regress serial-vs-parallel wall time for the paper-shaped grid.
fn write_sweep_summary(c: &Criterion) {
    let median = |id: &str| c.results().iter().find(|r| r.id == id).map(|r| r.median_ns);
    let Some(serial_ns) = median("sweep_throughput/serial_5x20x6") else {
        return;
    };
    let host = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);

    let mut parallel_entries = Vec::new();
    for threads in thread_counts() {
        if let Some(ns) = median(&format!("sweep_throughput/threads_5x20x6/{threads}")) {
            parallel_entries.push(format!(
                "    {{\"threads\": {threads}, \"median_ns\": {ns:.1}, \"speedup\": {:.3}}}",
                serial_ns / ns
            ));
        }
    }
    let json = format!(
        "{{\n  \"grid\": {{\"apps\": {APPS}, \"mixes\": {MIXES}, \"loads\": {LOADS}, \
         \"cells\": {}, \"requests_per_cell\": {}}},\n  \"host_parallelism\": {host},\n  \
         \"serial_median_ns\": {serial_ns:.1},\n  \"parallel\": [\n{}\n  ]\n}}\n",
        APPS * MIXES * LOADS,
        requests_per_cell(),
        parallel_entries.join(",\n")
    );
    if let Err(e) = std::fs::write(SWEEP_JSON, &json) {
        eprintln!("sweep_throughput: could not write {SWEEP_JSON}: {e}");
    } else {
        println!("sweep_throughput: wrote {SWEEP_JSON}");
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(5).output_json(BENCH_JSON);
    targets = bench_sweep_throughput
}
criterion_main!(benches);
