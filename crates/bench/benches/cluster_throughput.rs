//! Fleet-scale cluster throughput: wall time of one `Cluster::run` as the
//! fleet grows (10 → 100 → 1000 servers), with a Rubik controller per
//! server — the heaviest realistic per-server policy — behind the
//! power-aware router.
//!
//! This tracks the binary-heap event loop's scalability: the per-request
//! cost must stay near-flat as servers multiply, because the loop touches
//! only the globally earliest server per event (stale heap entries are
//! skipped in O(log n)). Requests scale with the fleet so every size serves
//! the same per-server load.
//!
//! Results merge into `BENCH_controller.json` like the other controller
//! benches, and a summary (per-fleet-size median wall time and requests/s)
//! is merged into the `"cluster_throughput"` section of
//! `BENCH_cluster.json` (shared with the `fleet_cap` bench) for later PRs
//! to regress against.
//!
//! Env knobs: `RUBIK_CLUSTER_BENCH_REQUESTS` (default 30) sets requests per
//! server; `RUBIK_BENCH_SAMPLE_MS` / `RUBIK_BENCH_SAMPLES` are the usual
//! criterion smoke knobs.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use rubik::cluster::{fleet_trace, PowerAware};
use rubik::{AppProfile, Cluster, RubikConfig, RubikController, SimConfig, Trace};

const BENCH_JSON: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_controller.json");
const CLUSTER_JSON: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_cluster.json");

const FLEETS: [usize; 3] = [10, 100, 1000];
const LOAD: f64 = 0.3;

fn requests_per_server() -> usize {
    std::env::var("RUBIK_CLUSTER_BENCH_REQUESTS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(30)
}

fn run_fleet(config: &SimConfig, trace: &Trace, fleet: usize, bound: f64) -> f64 {
    let cluster = Cluster::new(
        config.clone(),
        fleet,
        Box::new(PowerAware::default()),
        |_| {
            RubikController::seeded_for_trace(
                RubikConfig::new(bound).with_profiling_window(1024),
                config.dvfs.clone(),
                trace,
                256,
            )
        },
    );
    let outcome = cluster.run(trace);
    assert_eq!(outcome.requests, trace.len());
    outcome.fleet_energy // checksum so the run cannot be optimized away
}

fn bench_cluster_throughput(c: &mut Criterion) {
    let config = SimConfig::paper_simulated();
    let profile = AppProfile::masstree();
    let bound = 3.0 * profile.mean_service_time();
    let per_server = requests_per_server();

    let mut group = c.benchmark_group("cluster_throughput");
    for fleet in FLEETS {
        let trace = fleet_trace(&profile, LOAD, fleet, per_server * fleet, 2015);
        group.bench_with_input(BenchmarkId::new("servers", fleet), &fleet, |b, &fleet| {
            b.iter(|| run_fleet(&config, &trace, fleet, bound))
        });
    }
    group.finish();

    write_cluster_summary(c, per_server);
}

/// Distills the group's results into the `"cluster_throughput"` section of
/// `BENCH_cluster.json`: per-fleet-size median wall time and request
/// throughput.
fn write_cluster_summary(c: &Criterion, per_server: usize) {
    let mut entries = Vec::new();
    for fleet in FLEETS {
        let id = format!("cluster_throughput/servers/{fleet}");
        if let Some(r) = c.results().iter().find(|r| r.id == id) {
            let requests = per_server * fleet;
            let rps = requests as f64 / (r.median_ns * 1e-9);
            entries.push(format!(
                "      {{\"servers\": {fleet}, \"requests\": {requests}, \
                 \"median_ns\": {:.1}, \"requests_per_sec\": {rps:.1}}}",
                r.median_ns
            ));
        }
    }
    if entries.is_empty() {
        return;
    }
    let section = format!(
        "{{\n    \"load_per_server\": {LOAD},\n    \"requests_per_server\": {per_server},\n    \
         \"router\": \"power-aware\",\n    \"policy\": \"rubik-per-server\",\n    \
         \"fleets\": [\n{}\n    ]\n  }}",
        entries.join(",\n")
    );
    if let Err(e) = rubik_bench::merge_bench_section(CLUSTER_JSON, "cluster_throughput", &section) {
        eprintln!("cluster_throughput: could not write {CLUSTER_JSON}: {e}");
    } else {
        println!("cluster_throughput: merged into {CLUSTER_JSON}");
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(5).output_json(BENCH_JSON);
    targets = bench_cluster_throughput
}
criterion_main!(benches);
