//! Offered-load profiles over time.
//!
//! The paper evaluates steady loads (Fig. 6, Fig. 9), sudden load steps
//! (Fig. 1b: 30%→50% at t=1 s; Fig. 10: 25%→50%→75% in 4 s steps), and
//! motivates diurnal variation (Sec. 7.2 sweeps 10–60%). [`LoadProfile`]
//! describes load as a fraction of the application's capacity at nominal
//! frequency, as a function of time.

use serde::{Deserialize, Serialize};

/// Offered load (fraction of nominal-frequency capacity) as a function of
/// time.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum LoadProfile {
    /// Constant load for the given duration (seconds).
    Constant {
        /// Load as a fraction of capacity (e.g. 0.5 for 50%).
        load: f64,
        /// Duration in seconds.
        duration: f64,
    },
    /// Piecewise-constant steps: each entry is `(load, duration)`.
    Steps(Vec<(f64, f64)>),
    /// Sinusoidal diurnal pattern around `mean` with amplitude `amplitude`
    /// and the given period, for `duration` seconds.
    Diurnal {
        /// Mean load.
        mean: f64,
        /// Peak deviation from the mean.
        amplitude: f64,
        /// Period of the sinusoid in seconds.
        period: f64,
        /// Total duration in seconds.
        duration: f64,
    },
}

impl LoadProfile {
    /// The Fig. 1b experiment: 30% load for 1 s, then 50% for 1 s.
    pub fn fig1_step() -> Self {
        LoadProfile::Steps(vec![(0.30, 1.0), (0.50, 1.0)])
    }

    /// The Fig. 10 experiment: 25% for 4 s, 50% for 4 s, 75% for 4 s.
    pub fn fig10_steps() -> Self {
        LoadProfile::Steps(vec![(0.25, 4.0), (0.50, 4.0), (0.75, 4.0)])
    }

    /// Total duration of the profile, in seconds.
    pub fn duration(&self) -> f64 {
        match self {
            LoadProfile::Constant { duration, .. } => *duration,
            LoadProfile::Steps(steps) => steps.iter().map(|&(_, d)| d).sum(),
            LoadProfile::Diurnal { duration, .. } => *duration,
        }
    }

    /// The load at time `t` (0 outside the profile's duration).
    pub fn load_at(&self, t: f64) -> f64 {
        if t < 0.0 || t >= self.duration() {
            return 0.0;
        }
        match self {
            LoadProfile::Constant { load, .. } => *load,
            LoadProfile::Steps(steps) => {
                let mut elapsed = 0.0;
                for &(load, d) in steps {
                    if t < elapsed + d {
                        return load;
                    }
                    elapsed += d;
                }
                0.0
            }
            LoadProfile::Diurnal {
                mean,
                amplitude,
                period,
                ..
            } => {
                let phase = 2.0 * std::f64::consts::PI * t / period;
                (mean + amplitude * phase.sin()).max(0.0)
            }
        }
    }

    /// Average load over the profile's duration (numerically integrated).
    pub fn average_load(&self) -> f64 {
        match self {
            LoadProfile::Constant { load, .. } => *load,
            LoadProfile::Steps(steps) => {
                let total: f64 = steps.iter().map(|&(_, d)| d).sum();
                if total <= 0.0 {
                    return 0.0;
                }
                steps.iter().map(|&(l, d)| l * d).sum::<f64>() / total
            }
            LoadProfile::Diurnal { mean, .. } => *mean,
        }
    }

    /// Validates that the profile is well-formed (non-negative loads and
    /// positive durations).
    pub fn validate(&self) -> Result<(), String> {
        let check_load = |l: f64| {
            if !(0.0..=2.0).contains(&l) {
                Err(format!("load {l} outside the sensible range [0, 2]"))
            } else {
                Ok(())
            }
        };
        match self {
            LoadProfile::Constant { load, duration } => {
                check_load(*load)?;
                if *duration <= 0.0 {
                    return Err("duration must be positive".into());
                }
            }
            LoadProfile::Steps(steps) => {
                if steps.is_empty() {
                    return Err("step profile must have at least one step".into());
                }
                for &(l, d) in steps {
                    check_load(l)?;
                    if d <= 0.0 {
                        return Err("step durations must be positive".into());
                    }
                }
            }
            LoadProfile::Diurnal {
                mean,
                amplitude,
                period,
                duration,
            } => {
                check_load(*mean)?;
                if *amplitude < 0.0 || *period <= 0.0 || *duration <= 0.0 {
                    return Err("diurnal parameters must be positive".into());
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_profile() {
        let p = LoadProfile::Constant {
            load: 0.4,
            duration: 2.0,
        };
        assert_eq!(p.load_at(1.0), 0.4);
        assert_eq!(p.load_at(-0.1), 0.0);
        assert_eq!(p.load_at(2.5), 0.0);
        assert_eq!(p.duration(), 2.0);
        assert_eq!(p.average_load(), 0.4);
        assert!(p.validate().is_ok());
    }

    #[test]
    fn step_profile_matches_fig10() {
        let p = LoadProfile::fig10_steps();
        assert_eq!(p.duration(), 12.0);
        assert_eq!(p.load_at(1.0), 0.25);
        assert_eq!(p.load_at(5.0), 0.50);
        assert_eq!(p.load_at(11.9), 0.75);
        assert!((p.average_load() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn fig1_step_switches_at_one_second() {
        let p = LoadProfile::fig1_step();
        assert_eq!(p.load_at(0.5), 0.30);
        assert_eq!(p.load_at(1.5), 0.50);
        assert_eq!(p.duration(), 2.0);
    }

    #[test]
    fn diurnal_profile_oscillates_around_mean() {
        let p = LoadProfile::Diurnal {
            mean: 0.35,
            amplitude: 0.25,
            period: 10.0,
            duration: 20.0,
        };
        assert!((p.load_at(2.5) - 0.6).abs() < 1e-9); // peak at quarter period
        assert!((p.load_at(7.5) - 0.1).abs() < 1e-9); // trough at three quarters
        assert_eq!(p.average_load(), 0.35);
        assert!(p.validate().is_ok());
    }

    #[test]
    fn diurnal_load_never_negative() {
        let p = LoadProfile::Diurnal {
            mean: 0.1,
            amplitude: 0.5,
            period: 4.0,
            duration: 8.0,
        };
        for i in 0..80 {
            assert!(p.load_at(i as f64 * 0.1) >= 0.0);
        }
    }

    #[test]
    fn validation_rejects_bad_profiles() {
        assert!(LoadProfile::Constant {
            load: -0.1,
            duration: 1.0
        }
        .validate()
        .is_err());
        assert!(LoadProfile::Steps(vec![]).validate().is_err());
        assert!(LoadProfile::Steps(vec![(0.5, 0.0)]).validate().is_err());
        assert!(LoadProfile::Constant {
            load: 0.5,
            duration: 0.0
        }
        .validate()
        .is_err());
    }
}
