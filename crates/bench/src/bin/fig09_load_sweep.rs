//! Fig. 9: trace-driven load sweeps for every application — tail latency
//! (9a) and core energy per request (9b) under Fixed-frequency, StaticOracle,
//! DynamicOracle, Rubik without feedback, and Rubik.
//!
//! The (app × load) grid runs on `rubik-sweep` (DynamicOracle makes these
//! the slowest standalone cells); pass `--threads N` to control the pool.

use rubik::{AppProfile, SweepSpec};
use rubik_bench::{print_header, BenchArgs, Harness};

/// One grid cell: the five schemes' (tail, energy-per-request) pairs.
struct CellRow {
    tails_us: [f64; 5],
    energy_mj: [f64; 5],
}

fn main() {
    let args = BenchArgs::parse();
    // The full Table-3 request counts make DynamicOracle slow; a reduced
    // count preserves the curves' shape.
    let harness = args.apply(Harness::new().with_requests(2500));
    let apps = AppProfile::all();
    let loads = [0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8];
    let executor = args.executor();

    let bounds = executor.map(&apps, |app| harness.latency_bound(app));

    let spec = SweepSpec::new()
        .axis("app", apps.len())
        .axis("load", loads.len());
    let cells = executor
        .run(&spec, |cell| {
            let (i, j) = (cell.get("app"), cell.get("load"));
            let (app, load, bound) = (&apps[i], loads[j], bounds[i]);
            // The 50% point is evaluated on the bound-defining trace (same
            // convention as fig06) so that StaticOracle lands exactly at the
            // nominal frequency there, as in the paper.
            let seed = if load == 0.5 {
                777
            } else {
                (i * 100 + j) as u64
            };
            let trace = harness.trace(app, load, seed);
            let fixed = harness.run_fixed(&trace, harness.sim.dvfs.nominal());
            let (static_oracle, _) = harness.run_static_oracle(&trace, bound);
            let dynamic = harness.run_dynamic_oracle(&trace, bound);
            let (rubik_nofb, _) = harness.run_rubik(&trace, bound, false);
            let (rubik, _) = harness.run_rubik(&trace, bound, true);
            let schemes = [fixed, static_oracle, dynamic, rubik_nofb, rubik];
            CellRow {
                tails_us: schemes.map(|s| s.tail_latency * 1e6),
                energy_mj: schemes.map(|s| s.energy_per_request * 1e3),
            }
        })
        .into_results();

    for (i, app) in apps.iter().enumerate() {
        println!(
            "# Fig. 9: {} (tail bound {:.0} us)",
            app.name(),
            bounds[i] * 1e6
        );
        print_header(&[
            "load",
            "fixed_tail_us",
            "static_tail_us",
            "dynamic_tail_us",
            "rubik_nofb_tail_us",
            "rubik_tail_us",
            "fixed_mJ",
            "static_mJ",
            "dynamic_mJ",
            "rubik_nofb_mJ",
            "rubik_mJ",
        ]);
        for (j, load) in loads.into_iter().enumerate() {
            let row = &cells[spec.index_of(&[i, j])];
            let t = row.tails_us;
            let e = row.energy_mj;
            println!(
                "{:.0}%\t{:.1}\t{:.1}\t{:.1}\t{:.1}\t{:.1}\t{:.3}\t{:.3}\t{:.3}\t{:.3}\t{:.3}",
                load * 100.0,
                t[0],
                t[1],
                t[2],
                t[3],
                t[4],
                e[0],
                e[1],
                e[2],
                e[3],
                e[4],
            );
        }
        println!();
    }
}
