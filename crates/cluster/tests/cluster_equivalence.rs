//! The cluster contract, pinned bitwise:
//!
//! 1. A **1-server cluster behind the passthrough router is the standalone
//!    simulator**: its `RunResult` equals `Server::run` on the same trace,
//!    bit for bit, for every policy (including Rubik, whose tick-driven
//!    table rebuilds would expose any reordered or dropped callback).
//! 2. A cluster run is a **pure function of its inputs**: sweeping a grid of
//!    cluster cells on `rubik-sweep` returns byte-identical `ClusterOutcome`
//!    vectors at 1, 2, and 8 threads — including a 1000-server fleet in one
//!    process.

use rubik_cluster::{
    fleet_trace, Cluster, ClusterOutcome, JoinShortestQueue, Passthrough, PowerAware, RoundRobin,
    Router,
};
use rubik_core::{PegasusConfig, PegasusPolicy, RubikConfig, RubikController};
use rubik_sim::{DvfsPolicy, FixedFrequencyPolicy, IdleMode, RunResult, Server, SimConfig, Trace};
use rubik_sweep::{SweepExecutor, SweepSpec};
use rubik_workloads::{AppProfile, WorkloadGenerator};

fn result_bits(r: &RunResult) -> Vec<u64> {
    let mut bits = vec![r.end_time().to_bits()];
    for rec in r.records() {
        bits.extend_from_slice(&[
            rec.id,
            rec.arrival.to_bits(),
            rec.start.to_bits(),
            rec.completion.to_bits(),
            rec.queue_len_at_arrival as u64,
        ]);
    }
    for s in r.segments() {
        bits.extend_from_slice(&[
            s.start.to_bits(),
            s.end.to_bits(),
            s.freq.mhz() as u64,
            s.activity as u64,
        ]);
    }
    bits
}

fn outcome_bits(o: &ClusterOutcome) -> Vec<u64> {
    let mut bits = vec![
        o.requests as u64,
        o.tail_latency.to_bits(),
        o.mean_latency.to_bits(),
        o.fleet_energy.to_bits(),
        o.fleet_power.to_bits(),
        o.duration.to_bits(),
    ];
    for s in &o.per_server {
        bits.extend_from_slice(&[
            s.requests as u64,
            s.tail_latency.to_bits(),
            s.energy.to_bits(),
            s.busy_time.to_bits(),
            s.idle_time.to_bits(),
            s.sleep_time.to_bits(),
            s.end_time.to_bits(),
        ]);
    }
    bits
}

/// Every policy the 1-server equivalence runs, built fresh per invocation.
fn policies(config: &SimConfig, trace: &Trace, bound: f64) -> Vec<(String, Box<dyn DvfsPolicy>)> {
    let mut rubik = RubikController::new(
        RubikConfig::new(bound).with_profiling_window(2048),
        config.dvfs.clone(),
    );
    rubik.seed_profile(
        trace
            .requests()
            .iter()
            .take(512)
            .map(|r| (r.compute_cycles, r.membound_time)),
    );
    vec![
        (
            "fixed".into(),
            Box::new(FixedFrequencyPolicy::new(config.dvfs.nominal())) as Box<dyn DvfsPolicy>,
        ),
        ("rubik".into(), Box::new(rubik)),
        (
            "pegasus".into(),
            Box::new(PegasusPolicy::new(
                PegasusConfig::new(bound),
                config.dvfs.clone(),
            )),
        ),
    ]
}

#[test]
fn one_server_passthrough_cluster_reproduces_server_run_bitwise() {
    let configs = [
        SimConfig::paper_simulated(),
        SimConfig::paper_simulated().with_idle_mode(IdleMode::Sleep {
            wakeup_latency: 100e-6,
        }),
    ];
    let profile = AppProfile::masstree();
    let bound = 3.0 * profile.mean_service_time();

    for config in &configs {
        for seed in [3u64, 2015] {
            let trace = WorkloadGenerator::new(profile.clone(), seed).steady_trace(0.5, 700);

            for (name, mut policy) in policies(config, &trace, bound) {
                let reference = result_bits(&Server::new(config.clone()).run(&trace, &mut policy));

                let (name2, cluster_policy) = policies(config, &trace, bound)
                    .into_iter()
                    .find(|(n, _)| *n == name)
                    .expect("same policy set");
                assert_eq!(name, name2);
                // The factory is called exactly once for the 1-server
                // fleet; hand it the prebuilt (seeded) policy.
                let mut slot = Some(cluster_policy);
                let cluster = Cluster::new(config.clone(), 1, Box::new(Passthrough), |_| {
                    slot.take().expect("policy factory called once per server")
                });
                let (_, results) = cluster.run_with_results(&trace);
                assert_eq!(results.len(), 1);
                assert!(
                    result_bits(&results[0]) == reference,
                    "1-server cluster diverged from Server::run: policy {name}, seed {seed}"
                );
            }
        }
    }
}

fn routers() -> Vec<Box<dyn Router>> {
    vec![
        Box::new(RoundRobin::new()),
        Box::new(JoinShortestQueue::new()),
        Box::new(PowerAware::default()),
    ]
}

/// One cluster cell: `fleet` Rubik servers behind router `r`, at `load` per
/// server. Deterministic per (r, fleet, load, seed).
fn run_cell(router_idx: usize, fleet: usize, load: f64, seed: u64) -> ClusterOutcome {
    let config = SimConfig::paper_simulated();
    let profile = AppProfile::masstree();
    let bound = 3.0 * profile.mean_service_time();
    // Scale the request count with the fleet so every server sees work.
    let trace = fleet_trace(&profile, load, fleet, 120 * fleet, seed);
    let router = routers().swap_remove(router_idx);
    let cluster = Cluster::new(config.clone(), fleet, router, |_| {
        RubikController::seeded_for_trace(
            RubikConfig::new(bound).with_profiling_window(1024),
            config.dvfs.clone(),
            &trace,
            256,
        )
    });
    cluster.run(&trace)
}

#[test]
fn cluster_sweep_is_bit_identical_across_thread_counts() {
    let fleets = [2usize, 8];
    let loads = [0.3, 0.6];
    let spec = SweepSpec::new()
        .axis("router", routers().len())
        .axis("fleet", fleets.len())
        .axis("load", loads.len());
    let cell = |c: &rubik_sweep::Cell<'_>| {
        outcome_bits(&run_cell(
            c.get("router"),
            fleets[c.get("fleet")],
            loads[c.get("load")],
            41 + c.index() as u64,
        ))
    };

    let reference = SweepExecutor::serial().run(&spec, cell).into_results();
    for threads in [2usize, 8] {
        let swept = SweepExecutor::new(threads).run(&spec, cell).into_results();
        assert_eq!(
            swept, reference,
            "ClusterOutcome grid diverged at {threads} threads"
        );
    }
}

#[test]
fn thousand_server_fleet_runs_in_one_process_and_is_thread_invariant() {
    // The acceptance bar: 1000 `ServerSim`s multiplexed through one event
    // loop, swept via rubik-sweep, byte-identical at 1/2/8 threads. Cheap
    // per-server policies keep the test fast; the Rubik-per-server variant
    // is covered by the grid above.
    let fleet = 1000;
    let config = SimConfig::paper_simulated();
    let profile = AppProfile::masstree();
    let trace = fleet_trace(&profile, 0.25, fleet, 6000, 2015);

    let spec = SweepSpec::new().axis("router", routers().len());
    let cell = |c: &rubik_sweep::Cell<'_>| {
        let cluster = Cluster::new(
            config.clone(),
            fleet,
            routers().swap_remove(c.get("router")),
            |_| FixedFrequencyPolicy::new(config.dvfs.nominal()),
        );
        let outcome = cluster.run(&trace);
        assert_eq!(outcome.requests, 6000);
        assert_eq!(outcome.servers(), fleet);
        outcome_bits(&outcome)
    };

    let reference = SweepExecutor::serial().run(&spec, cell).into_results();
    for threads in [2usize, 8] {
        let swept = SweepExecutor::new(threads).run(&spec, cell).into_results();
        assert_eq!(
            swept, reference,
            "1000-server ClusterOutcome diverged at {threads} threads"
        );
    }
}

#[test]
fn router_choice_changes_outcomes_but_not_request_conservation() {
    // Sanity: the three routers genuinely behave differently on a bursty
    // stream, yet every request completes exactly once under each.
    let config = SimConfig::paper_simulated();
    let profile = AppProfile::xapian();
    let trace = fleet_trace(&profile, 0.5, 4, 800, 7);
    let mut tails = Vec::new();
    for router in routers() {
        let name = router.name().to_string();
        let cluster = Cluster::new(config.clone(), 4, router, |_| {
            FixedFrequencyPolicy::new(config.dvfs.nominal())
        });
        let outcome = cluster.run(&trace);
        assert_eq!(outcome.requests, 800, "router {name} lost requests");
        tails.push((name, outcome.tail_latency));
    }
    // JSQ must not be worse than round-robin on this bursty stream.
    let tail = |n: &str| tails.iter().find(|(name, _)| name == n).unwrap().1;
    assert!(tail("join-shortest-queue") <= tail("round-robin") + 1e-12);
}
