//! Simulation results: per-request records and the core activity timeline.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use rubik_stats::percentile;

use crate::freq::Freq;
use crate::request::RequestRecord;

/// What the core was doing during a timeline segment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CoreActivity {
    /// Executing a request.
    Busy,
    /// Idle (clock-gated) with no pending requests.
    Idle,
    /// In a deep sleep state (private caches flushed).
    Sleep,
}

/// A contiguous span of time during which the core's frequency and activity
/// did not change.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Segment {
    /// Segment start time (seconds).
    pub start: f64,
    /// Segment end time (seconds).
    pub end: f64,
    /// Frequency in effect.
    pub freq: Freq,
    /// Activity during the segment.
    pub activity: CoreActivity,
}

impl Segment {
    /// Duration of the segment.
    pub fn duration(&self) -> f64 {
        self.end - self.start
    }
}

/// Time spent per frequency, split by activity.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct FreqResidency {
    /// Busy seconds per frequency.
    pub busy: BTreeMap<Freq, f64>,
    /// Idle (clock-gated) seconds per frequency.
    pub idle: BTreeMap<Freq, f64>,
    /// Deep-sleep seconds (frequency is irrelevant while asleep).
    pub sleep: f64,
}

impl FreqResidency {
    /// Total busy time.
    pub fn busy_time(&self) -> f64 {
        self.busy.values().sum()
    }

    /// Total idle (non-sleep) time.
    pub fn idle_time(&self) -> f64 {
        self.idle.values().sum()
    }

    /// Total wall-clock time covered.
    pub fn total_time(&self) -> f64 {
        self.busy_time() + self.idle_time() + self.sleep
    }

    /// Fraction of *busy* time spent at each frequency (the frequency
    /// histograms of Fig. 7b / 8b).
    pub fn busy_fraction_per_freq(&self) -> BTreeMap<Freq, f64> {
        let total = self.busy_time();
        if total <= 0.0 {
            return BTreeMap::new();
        }
        self.busy.iter().map(|(&f, &t)| (f, t / total)).collect()
    }

    /// Core utilization: busy time over total time.
    pub fn utilization(&self) -> f64 {
        let total = self.total_time();
        if total <= 0.0 {
            0.0
        } else {
            self.busy_time() / total
        }
    }
}

/// The complete result of one simulation run.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct RunResult {
    records: Vec<RequestRecord>,
    segments: Vec<Segment>,
    end_time: f64,
}

impl RunResult {
    /// Assembles a result. Used by the simulator; also useful to construct
    /// synthetic results in tests.
    pub fn new(records: Vec<RequestRecord>, segments: Vec<Segment>, end_time: f64) -> Self {
        Self {
            records,
            segments,
            end_time,
        }
    }

    /// Per-request records, in completion order.
    pub fn records(&self) -> &[RequestRecord] {
        &self.records
    }

    /// The frequency/activity timeline.
    pub fn segments(&self) -> &[Segment] {
        &self.segments
    }

    /// Time at which the run ended (last completion or last segment end).
    pub fn end_time(&self) -> f64 {
        self.end_time
    }

    /// End-to-end latencies of all requests.
    pub fn latencies(&self) -> Vec<f64> {
        self.records.iter().map(|r| r.latency()).collect()
    }

    /// Tail latency at quantile `q` (e.g. 0.95), or `None` for an empty run.
    pub fn tail_latency(&self, q: f64) -> Option<f64> {
        percentile(&self.latencies(), q)
    }

    /// Mean end-to-end latency.
    pub fn mean_latency(&self) -> f64 {
        if self.records.is_empty() {
            return 0.0;
        }
        self.latencies().iter().sum::<f64>() / self.records.len() as f64
    }

    /// Tail latency over a rolling window ending at each request completion,
    /// returned as `(completion_time, tail)` points (used by Fig. 1b and
    /// Fig. 10).
    pub fn rolling_tail(&self, window: f64, q: f64) -> Vec<(f64, f64)> {
        let mut tracker = rubik_stats::RollingTailTracker::new(window, q);
        let mut sorted: Vec<&RequestRecord> = self.records.iter().collect();
        sorted.sort_by(|a, b| a.completion.partial_cmp(&b.completion).unwrap());
        let mut out = Vec::with_capacity(sorted.len());
        for r in sorted {
            tracker.record(r.completion, r.latency());
            if let Some(t) = tracker.tail() {
                out.push((r.completion, t));
            }
        }
        out
    }

    /// Fraction of requests whose latency exceeds `bound`.
    pub fn violation_rate(&self, bound: f64) -> f64 {
        if self.records.is_empty() {
            return 0.0;
        }
        self.records.iter().filter(|r| r.latency() > bound).count() as f64
            / self.records.len() as f64
    }

    /// Time spent at each frequency, split by activity.
    pub fn freq_residency(&self) -> FreqResidency {
        let mut res = FreqResidency::default();
        for s in &self.segments {
            let d = s.duration();
            match s.activity {
                CoreActivity::Busy => *res.busy.entry(s.freq).or_insert(0.0) += d,
                CoreActivity::Idle => *res.idle.entry(s.freq).or_insert(0.0) += d,
                CoreActivity::Sleep => res.sleep += d,
            }
        }
        res
    }

    /// Frequency residency restricted to segments overlapping
    /// `[from, to)` — used for power-over-time plots (Fig. 10).
    pub fn freq_residency_between(&self, from: f64, to: f64) -> FreqResidency {
        let mut res = FreqResidency::default();
        for s in &self.segments {
            let start = s.start.max(from);
            let end = s.end.min(to);
            if end <= start {
                continue;
            }
            let d = end - start;
            match s.activity {
                CoreActivity::Busy => *res.busy.entry(s.freq).or_insert(0.0) += d,
                CoreActivity::Idle => *res.idle.entry(s.freq).or_insert(0.0) += d,
                CoreActivity::Sleep => res.sleep += d,
            }
        }
        res
    }

    /// `(time, frequency)` samples at each segment start — the frequency
    /// trace of Fig. 1b / Fig. 10 bottom panels.
    pub fn freq_trace(&self) -> Vec<(f64, Freq)> {
        self.segments.iter().map(|s| (s.start, s.freq)).collect()
    }

    /// Service times of all requests.
    pub fn service_times(&self) -> Vec<f64> {
        self.records.iter().map(|r| r.service_time()).collect()
    }

    /// Queue length seen by each arriving request.
    pub fn queue_lengths(&self) -> Vec<f64> {
        self.records
            .iter()
            .map(|r| r.queue_len_at_arrival as f64)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(id: u64, arrival: f64, start: f64, completion: f64) -> RequestRecord {
        RequestRecord {
            id,
            arrival,
            start,
            completion,
            compute_cycles: 1e6,
            membound_time: 0.0,
            queue_len_at_arrival: 0,
            class: 0,
        }
    }

    fn segment(start: f64, end: f64, mhz: u32, activity: CoreActivity) -> Segment {
        Segment {
            start,
            end,
            freq: Freq::from_mhz(mhz),
            activity,
        }
    }

    #[test]
    fn tail_latency_of_known_records() {
        let records: Vec<_> = (0..100)
            .map(|i| record(i, 0.0, 0.0, (i + 1) as f64 * 1e-3))
            .collect();
        let r = RunResult::new(records, vec![], 1.0);
        assert!((r.tail_latency(0.95).unwrap() - 0.095).abs() < 1e-9);
        assert!((r.mean_latency() - 0.0505).abs() < 1e-9);
        assert!((r.violation_rate(0.095) - 0.05).abs() < 1e-9);
    }

    #[test]
    fn empty_run_has_no_tail() {
        let r = RunResult::default();
        assert!(r.tail_latency(0.95).is_none());
        assert_eq!(r.mean_latency(), 0.0);
        assert_eq!(r.violation_rate(1.0), 0.0);
    }

    #[test]
    fn residency_accumulates_by_activity() {
        let segs = vec![
            segment(0.0, 1.0, 2400, CoreActivity::Busy),
            segment(1.0, 1.5, 2400, CoreActivity::Idle),
            segment(1.5, 2.0, 800, CoreActivity::Busy),
            segment(2.0, 3.0, 800, CoreActivity::Sleep),
        ];
        let r = RunResult::new(vec![], segs, 3.0);
        let res = r.freq_residency();
        assert!((res.busy_time() - 1.5).abs() < 1e-12);
        assert!((res.idle_time() - 0.5).abs() < 1e-12);
        assert!((res.sleep - 1.0).abs() < 1e-12);
        assert!((res.total_time() - 3.0).abs() < 1e-12);
        assert!((res.utilization() - 0.5).abs() < 1e-12);
        let frac = res.busy_fraction_per_freq();
        assert!((frac[&Freq::from_mhz(2400)] - 2.0 / 3.0).abs() < 1e-12);
        assert!((frac[&Freq::from_mhz(800)] - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn residency_between_clips_segments() {
        let segs = vec![segment(0.0, 2.0, 2400, CoreActivity::Busy)];
        let r = RunResult::new(vec![], segs, 2.0);
        let res = r.freq_residency_between(0.5, 1.0);
        assert!((res.busy_time() - 0.5).abs() < 1e-12);
        let res = r.freq_residency_between(3.0, 4.0);
        assert_eq!(res.busy_time(), 0.0);
    }

    #[test]
    fn rolling_tail_is_sorted_by_time() {
        let records = vec![
            record(0, 0.0, 0.0, 0.010),
            record(1, 0.0, 0.0, 0.030),
            record(2, 0.0, 0.0, 0.020),
        ];
        let r = RunResult::new(records, vec![], 0.03);
        let roll = r.rolling_tail(1.0, 0.95);
        assert_eq!(roll.len(), 3);
        for w in roll.windows(2) {
            assert!(w[1].0 >= w[0].0);
            assert!(w[1].1 >= w[0].1);
        }
    }
}
