//! The shared fleet-hedge scenario: a Rubik fleet with one rack of
//! stragglers behind a failure-blind router, with and without hedging.
//!
//! This is the acceptance experiment for speculative hedging: the router
//! (plain JSQ, no health signal) keeps feeding a rack whose members run
//! several times slow for the middle of the run, so the only thing standing
//! between those requests and the p99 is the hedge — a duplicate launched
//! onto a healthy server once the attempt's age crosses the tracked latency
//! quantile. `benches/fleet_hedge.rs` measures it and records the
//! `"fleet_hedge"` section of `BENCH_cluster.json`; keeping the scenario
//! here keeps those numbers reproducible from one definition.
//!
//! The defaults: 32 servers in racks of 4 ([`FailureTopology::grid`]),
//! rack 1 straggling 6x slow over `[0.2, 0.8)` of the run, 0.5 load per
//! server, Rubik on every core.

use rubik::cluster::fleet_trace;
use rubik::{
    AppProfile, Cluster, ClusterOutcome, FailureTopology, FaultPlan, JoinShortestQueue,
    RequestPolicy, RubikConfig, RubikController, RunResult, SimConfig, Trace,
};

/// The fleet-hedge experiment shape. Construct with [`Default::default`]
/// for the bench configuration and override fields for smaller runs.
#[derive(Debug, Clone, PartialEq)]
pub struct HedgeScenario {
    /// Fleet size.
    pub fleet: usize,
    /// Servers per rack in the failure topology.
    pub per_rack: usize,
    /// The rack whose members straggle.
    pub straggling_rack: usize,
    /// Service-time multiplier inside the straggle window.
    pub slowdown: f64,
    /// Per-server offered load (fraction of one core's nominal capacity).
    pub load: f64,
    /// Latency quantile that arms the hedge trigger.
    pub hedge_quantile: f64,
    /// Requests per server.
    pub requests_per_server: usize,
    /// Trace seed.
    pub seed: u64,
}

impl Default for HedgeScenario {
    fn default() -> Self {
        Self {
            fleet: 32,
            per_rack: 4,
            straggling_rack: 1,
            slowdown: 6.0,
            load: 0.5,
            hedge_quantile: 0.95,
            requests_per_server: 60,
            seed: 2015,
        }
    }
}

impl HedgeScenario {
    /// The application profile the scenario serves.
    pub fn profile(&self) -> AppProfile {
        AppProfile::masstree()
    }

    /// The per-server Rubik latency bound: 3x the mean service time.
    pub fn bound(&self) -> f64 {
        3.0 * self.profile().mean_service_time()
    }

    /// The hedge trigger floor: 2x the mean service time, so an empty
    /// latency tracker never hedges instantly.
    pub fn hedge_min_delay(&self) -> f64 {
        2.0 * self.profile().mean_service_time()
    }

    /// The rack/row placement of the fleet.
    pub fn topology(&self) -> FailureTopology {
        FailureTopology::grid(self.fleet, self.per_rack, 2)
    }

    /// The fleet-wide arrival stream.
    pub fn trace(&self) -> Trace {
        fleet_trace(
            &self.profile(),
            self.load,
            self.fleet,
            self.requests_per_server * self.fleet,
            self.seed,
        )
    }

    /// The fault plan: every member of the straggling rack runs `slowdown`
    /// times slow over the middle `[0.2, 0.8)` of the run.
    pub fn straggling_rack_plan(&self, duration: f64) -> FaultPlan {
        let mut plan = FaultPlan::new();
        for member in self.topology().rack_members(self.straggling_rack) {
            plan = plan.straggle(member, 0.2 * duration, 0.8 * duration, self.slowdown);
        }
        plan
    }

    /// One run of the scenario; `hedged` arms the hedging policy (the
    /// unhedged baseline carries a default, bit-neutral policy on the same
    /// plan).
    pub fn run(&self, trace: &Trace, hedged: bool) -> (ClusterOutcome, Vec<RunResult>) {
        let config = SimConfig::paper_simulated();
        let bound = self.bound();
        let policy = if hedged {
            RequestPolicy::new().with_hedging(self.hedge_quantile, self.hedge_min_delay())
        } else {
            RequestPolicy::new()
        };
        Cluster::new(
            config.clone(),
            self.fleet,
            // Failure-blind on purpose: JSQ keeps routing to the stragglers,
            // so any p99 relief below is hedging's alone.
            Box::new(JoinShortestQueue::new()),
            |_| {
                RubikController::seeded_for_trace(
                    RubikConfig::new(bound).with_profiling_window(1024),
                    config.dvfs.clone(),
                    trace,
                    256,
                )
            },
        )
        .with_fault_plan(self.straggling_rack_plan(trace.duration()))
        .with_request_policy(policy)
        .run_with_results(trace)
    }
}

/// The p99 end-to-end latency over every completion record in a run.
pub fn p99_latency(results: &[RunResult]) -> f64 {
    let latencies: Vec<f64> = results
        .iter()
        .flat_map(|r| r.records().iter().map(|rec| rec.completion - rec.arrival))
        .collect();
    rubik::stats::percentile(&latencies, 0.99).unwrap_or(0.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hedging_cuts_the_p99_under_a_straggling_rack() {
        let scenario = HedgeScenario {
            fleet: 8,
            requests_per_server: 40,
            ..Default::default()
        };
        let trace = scenario.trace();
        let (off, off_results) = scenario.run(&trace, false);
        let (on, on_results) = scenario.run(&trace, true);
        assert_eq!(
            (off.availability.hedged, off.availability.hedge_wins),
            (0, 0)
        );
        assert!(
            on.availability.hedged > 0,
            "the straggler never triggered a hedge"
        );
        assert!(on.availability.hedge_wins > 0, "no duplicate ever won");
        assert_eq!(
            on.availability.completed + on.availability.lost,
            on.availability.offered
        );
        let (p99_off, p99_on) = (p99_latency(&off_results), p99_latency(&on_results));
        assert!(
            p99_on < p99_off,
            "hedging failed to cut the p99: {p99_on} vs {p99_off}"
        );
    }
}
