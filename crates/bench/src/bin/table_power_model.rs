//! Power-model accuracy (Sec. 5.1): least-squares fit of the full-system
//! power model on synthetic counter samples and its k-fold cross-validation
//! error (the paper reports 5.1% mean and 11% worst-case on 20,000 samples).

use rubik::power::regression::{k_fold_cross_validation, synthesize_samples, PowerRegression};
use rubik_bench::{print_header, BenchArgs};

fn main() {
    let args = BenchArgs::parse();
    println!("# Power-model fit and k-fold cross-validation (Sec. 5.1 methodology)");
    print_header(&[
        "samples",
        "noise_%",
        "folds",
        "mean_abs_err_%",
        "worst_abs_err_%",
    ]);
    for (samples, noise) in [(20_000usize, 0.05f64), (20_000, 0.02), (5_000, 0.05)] {
        let data = synthesize_samples(samples, noise, args.seed.unwrap_or(2015));
        let report = k_fold_cross_validation(&data, 10);
        println!(
            "{}\t{:.0}\t{}\t{:.1}\t{:.1}",
            samples,
            noise * 100.0,
            10,
            report.mean_abs_error * 100.0,
            report.worst_abs_error * 100.0
        );
    }

    // Also report the in-sample fit coefficients for reference.
    let data = synthesize_samples(20_000, 0.05, args.seed.unwrap_or(2015));
    let model = PowerRegression::fit(&data);
    let c = model.coefficients();
    println!();
    println!(
        "# fitted model: P = {:.2} + {:.2} * V^2 * f * util + {:.2} * V + {:.2} * mem",
        c[0], c[1], c[2], c[3]
    );
}
