//! Table 2: the simulated CMP configuration used throughout the evaluation.

use rubik::{CorePowerModel, DvfsConfig, ServerPowerModel, SimConfig, Tdp};

fn main() {
    let sim = SimConfig::paper_simulated();
    let dvfs = DvfsConfig::haswell_like();
    let power = CorePowerModel::haswell_like();
    let server = ServerPowerModel::paper_simulated();
    let tdp = Tdp::paper();

    println!("# Table 2: simulated CMP configuration");
    println!(
        "cores\t{} (one LC application instance per core)",
        server.cores()
    );
    println!(
        "dvfs\t{:.1}-{:.1} GHz in {} MHz steps, nominal {:.1} GHz",
        dvfs.min().ghz(),
        dvfs.max().ghz(),
        dvfs.step_mhz(),
        dvfs.nominal().ghz()
    );
    println!(
        "vf_transition\t{:.0} us (Haswell-like FIVR per-core DVFS)",
        dvfs.transition_latency() * 1e6
    );
    println!(
        "tick_interval\t{:.0} ms (target tail table updates)",
        sim.tick_interval * 1e3
    );
    println!("tdp\t{:.0} W", tdp.budget());
    println!(
        "core_power\tactive {:.1} W @ nominal, {:.1} W @ max, idle {:.1} W, sleep {:.1} W",
        power.active_power(dvfs.nominal()),
        power.active_power(dvfs.max()),
        power.idle_power(dvfs.min()),
        power.sleep_power()
    );
    println!(
        "server_power\tidle {:.0} W, peak {:.0} W",
        server.idle_power(),
        server.peak_power()
    );
}
