//! Zero steady-state allocations across the controller's warm hot loop.
//!
//! A counting global allocator wraps the system allocator; after a warm-up
//! phase that drives every buffer (profiler window, incremental bucket
//! counts, the table builder's plans/spectra/rows, the rolling tail
//! tracker's sort scratch) to its high-water size, a full
//! completion → tick (with a *performed* rebuild) → arrival cycle must not
//! allocate at all. This is the structural guarantee behind the
//! "incremental, allocation-free rebuilds" contract: the 100 ms tick costs
//! arithmetic, never the allocator.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use rubik_core::{RubikConfig, RubikController};
use rubik_sim::{DvfsConfig, DvfsPolicy, InServiceView, QueuedView, RequestRecord, ServerState};
use rubik_stats::DeterministicRng;

struct CountingAllocator;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAllocator = CountingAllocator;

fn allocations() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}

fn state(now: f64, dvfs: &DvfsConfig, queue: &mut Vec<QueuedView>) -> ServerState {
    // The queued vector is moved in and out of the state so the test itself
    // performs no steady-state allocation either.
    ServerState {
        now,
        current_freq: dvfs.min(),
        target_freq: dvfs.min(),
        in_service: Some(InServiceView {
            id: 0,
            arrival: now - 1e-4,
            elapsed_compute_cycles: 3e5,
            elapsed_membound_time: 20e-6,
            oracle_compute_cycles: 1e6,
            oracle_membound_time: 60e-6,
            class: 0,
        }),
        queued: std::mem::take(queue),
    }
}

/// One steady-state iteration: a completion (new profile sample), the
/// periodic tick (which must perform a full rebuild — the profile changed),
/// and an arrival decision. Cycles are spaced 4 ms apart so the 1 s
/// feedback window saturates and fires during warm-up and steady state
/// alike.
fn drive_cycle(
    rubik: &mut RubikController,
    dvfs: &DvfsConfig,
    demands: &[(f64, f64)],
    cycle: u64,
    queue: &mut Vec<QueuedView>,
) {
    let now = 0.2 + cycle as f64 * 4e-3;
    let (c, m) = demands[(cycle as usize) % demands.len()];
    let record = RequestRecord {
        id: cycle,
        arrival: now - 5e-4,
        start: now - 4e-4,
        completion: now,
        compute_cycles: c,
        membound_time: m,
        queue_len_at_arrival: 1,
        class: 0,
    };
    let mut s = state(now, dvfs, queue);
    rubik.on_completion(&s, &record);
    rubik.on_tick(&s);
    rubik.on_arrival(&s);
    *queue = std::mem::take(&mut s.queued);
}

#[test]
fn warm_completion_tick_arrival_cycle_allocates_nothing() {
    let dvfs = DvfsConfig::haswell_like();
    // Small profiling window so the test exercises eviction (and the
    // incremental count maintenance) on every cycle, not just appends.
    let config = RubikConfig::new(2e-3).with_profiling_window(256);
    let mut rubik = RubikController::new(config, dvfs.clone());

    // Demands are drawn up front from a fixed pool: the pool's maximum
    // enters the window during warm-up, so the steady-state phase never
    // grows the bucket grid past its high-water shape.
    let mut rng = DeterministicRng::new(42);
    let demands: Vec<(f64, f64)> = (0..64)
        .map(|_| (rng.lognormal(1e6, 0.4), rng.lognormal(60e-6, 0.4)))
        .collect();
    rubik.seed_profile(demands.iter().copied());

    let mut queue: Vec<QueuedView> = (1..4)
        .map(|i| QueuedView {
            id: i,
            arrival: 0.0,
            oracle_compute_cycles: 1e6,
            oracle_membound_time: 60e-6,
            class: 0,
        })
        .collect();

    // Warm-up: fill the window past capacity (forcing evictions and grid
    // recounts), saturate the rolling feedback window, and perform many
    // real rebuilds so every buffer reaches its high-water size.
    for cycle in 0..512 {
        drive_cycle(&mut rubik, &dvfs, &demands, cycle, &mut queue);
    }

    let before_rebuilds = rubik.stats().table_rebuilds_performed;
    let before = allocations();
    for cycle in 512..768 {
        drive_cycle(&mut rubik, &dvfs, &demands, cycle, &mut queue);
    }
    let after = allocations();
    let stats = rubik.stats();

    // The steady-state cycles really did rebuild (no accidental gating) ...
    assert_eq!(
        stats.table_rebuilds_performed - before_rebuilds,
        256,
        "each steady-state tick must perform a rebuild"
    );
    // ... and did so without touching the allocator.
    assert_eq!(
        after - before,
        0,
        "steady-state completion+tick+arrival cycles must not allocate"
    );
}

#[test]
fn version_gated_tick_allocates_nothing_and_skips() {
    let dvfs = DvfsConfig::haswell_like();
    let mut rubik = RubikController::new(RubikConfig::new(2e-3), dvfs.clone());
    let mut rng = DeterministicRng::new(7);
    rubik.seed_profile((0..128).map(|_| (rng.lognormal(1e6, 0.3), rng.lognormal(40e-6, 0.3))));

    let mut queue = Vec::new();
    let s = state(0.5, &dvfs, &mut queue);
    rubik.on_tick(&s); // settle any first-tick work
    let before = allocations();
    for _ in 0..64 {
        rubik.on_tick(&s);
    }
    assert_eq!(
        allocations() - before,
        0,
        "gated ticks must not allocate a byte"
    );
    assert!(rubik.stats().table_rebuilds_skipped >= 64);
}
