//! The shared fleet-faults scenario: a capped Rubik fleet loses a staggered
//! wave of servers mid-run and gets them back.
//!
//! This is the acceptance experiment for the failure-aware serving stack,
//! shared between `benches/fleet_faults.rs` (which measures it and records
//! the `"fleet_faults"` and `"tail_attribution"` sections of
//! `BENCH_cluster.json`) and the `trace_report` binary (whose
//! `--scenario fleet_faults` mode re-runs it at a configurable size and
//! prints the golden-pinned tail-attribution tables). Keeping the scenario
//! in one place guarantees the bench numbers and the report decompose the
//! *same* experiment.
//!
//! The defaults reproduce the bench shape: 100 servers at 0.6 load each,
//! 10 crashing in a staggered wave over `[0.33, 0.66)` of the run, a
//! 3 W/server global budget enforced by `PegasusFleet` on a 20 ms epoch,
//! and Rubik on every core.

use rubik::cluster::fleet_trace;
use rubik::{
    AppProfile, Cluster, ClusterOutcome, CorePowerModel, FaultPlan, HealthAware, JoinShortestQueue,
    PegasusFleet, RequestPolicy, Router, RubikConfig, RubikController, RunResult, SimConfig,
    Telemetry, Trace, TraceLog,
};

/// The fleet-faults experiment shape. Construct with [`Default::default`]
/// for the bench configuration and override fields for smaller runs.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultsScenario {
    /// Fleet size.
    pub fleet: usize,
    /// Servers lost to the crash wave (the first `crashed` indices).
    pub crashed: usize,
    /// Per-server offered load (fraction of one core's nominal capacity).
    pub load: f64,
    /// Watts per server of the global budget: far under the ~6 W a busy
    /// core draws at nominal, so the apportioned ceilings genuinely bind.
    pub budget_per_server: f64,
    /// Fleet-controller epoch; short enough that the crash wave straddles
    /// several epochs at bench-sized runs.
    pub epoch: f64,
    /// Requests per server.
    pub requests_per_server: usize,
    /// Trace seed.
    pub seed: u64,
}

impl Default for FaultsScenario {
    fn default() -> Self {
        Self {
            fleet: 100,
            crashed: 10,
            load: 0.6,
            budget_per_server: 3.0,
            epoch: 0.02,
            requests_per_server: 60,
            seed: 2015,
        }
    }
}

impl FaultsScenario {
    /// The application profile the scenario serves.
    pub fn profile(&self) -> AppProfile {
        AppProfile::masstree()
    }

    /// The per-server Rubik latency bound: 3x the mean service time.
    pub fn bound(&self) -> f64 {
        3.0 * self.profile().mean_service_time()
    }

    /// The end-to-end deadline goodput is judged by: 15x the mean.
    pub fn deadline(&self) -> f64 {
        15.0 * self.profile().mean_service_time()
    }

    /// The global watt budget.
    pub fn budget(&self) -> f64 {
        self.budget_per_server * self.fleet as f64
    }

    /// The fleet-wide arrival stream.
    pub fn trace(&self) -> Trace {
        fleet_trace(
            &self.profile(),
            self.load,
            self.fleet,
            self.requests_per_server * self.fleet,
            self.seed,
        )
    }

    /// The crash wave: `crashed` servers go down in a staggered wave a
    /// third of the way into the run and recover, equally staggered, at
    /// two thirds.
    pub fn crash_wave(&self, duration: f64) -> FaultPlan {
        let mut plan = FaultPlan::new();
        let down = 0.33 * duration;
        let up = 0.66 * duration;
        let stagger = 0.002 * duration;
        for i in 0..self.crashed {
            plan = plan
                .crash(i, down + i as f64 * stagger)
                .recover(i, up + i as f64 * stagger);
        }
        plan
    }

    /// Deadline and retry schedule shared by the health-aware runs, derived
    /// from the app's mean service time.
    pub fn rescue_policy(&self) -> RequestPolicy {
        let mean = self.profile().mean_service_time();
        RequestPolicy::new()
            .with_deadline(self.deadline())
            .with_timeout(6.0 * mean)
            .with_retries(4, mean, 10.0 * mean)
            .salvaging_in_flight()
            .draining_on_crash()
    }

    fn cluster(&self, trace: &Trace, aware: bool) -> Cluster<RubikController> {
        let config = SimConfig::paper_simulated();
        let power = CorePowerModel::haswell_like();
        let bound = self.bound();
        let router: Box<dyn Router> = if aware {
            Box::new(HealthAware::new(JoinShortestQueue::new()))
        } else {
            Box::new(JoinShortestQueue::new())
        };
        let mut cluster = Cluster::new(config.clone(), self.fleet, router, |_| {
            RubikController::seeded_for_trace(
                RubikConfig::new(bound).with_profiling_window(1024),
                config.dvfs.clone(),
                trace,
                256,
            )
        })
        .with_power(power)
        .with_fleet_controller(Box::new(
            PegasusFleet::new(self.budget(), power).with_epoch(self.epoch),
        ))
        .with_fault_plan(self.crash_wave(trace.duration()));
        cluster = if aware {
            cluster.with_request_policy(self.rescue_policy())
        } else {
            // The blind baseline sees the same deadline but never times
            // out, retries, or routes around the dead servers.
            cluster.with_request_policy(RequestPolicy::new().with_deadline(self.deadline()))
        };
        cluster
    }

    /// One run of the scenario: `aware` selects the failure-aware stack
    /// (health-aware routing + timeouts + retries) over the blind baseline.
    pub fn run(&self, trace: &Trace, aware: bool) -> (ClusterOutcome, Vec<RunResult>) {
        self.cluster(trace, aware).run_with_results(trace)
    }

    /// Like [`run`](Self::run), with telemetry recording: also returns the
    /// assembled [`TraceLog`]. Recording is observation only — outcome and
    /// results are bit-identical to [`run`](Self::run).
    pub fn run_traced(
        &self,
        trace: &Trace,
        aware: bool,
    ) -> (ClusterOutcome, Vec<RunResult>, TraceLog) {
        self.cluster(trace, aware)
            .with_telemetry(Telemetry::recording())
            .run_traced(trace)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn traced_scenario_runs_are_bitwise_identical_to_plain_ones() {
        let scenario = FaultsScenario {
            fleet: 6,
            crashed: 2,
            requests_per_server: 30,
            ..Default::default()
        };
        let trace = scenario.trace();
        for aware in [false, true] {
            let (plain, _) = scenario.run(&trace, aware);
            let (traced, _, log) = scenario.run_traced(&trace, aware);
            assert_eq!(
                plain.fleet_energy.to_bits(),
                traced.fleet_energy.to_bits(),
                "recording perturbed the aware={aware} run"
            );
            assert_eq!(plain.tail_latency.to_bits(), traced.tail_latency.to_bits());
            assert_eq!(log.requests.len(), plain.availability.offered);
            assert_eq!(log.completed(), plain.availability.completed);
        }
    }
}
