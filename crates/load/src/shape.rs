//! Time-varying load shapes.
//!
//! A [`LoadShape`] describes offered load (fraction of nominal capacity) as
//! a function of time over a finite window. Shapes drive the
//! non-homogeneous Poisson sources in [`crate::source`]: the instantaneous
//! arrival rate at time `t` is `load_at(t) × capacity`, and the thinning
//! envelope is `peak_load() × capacity`.

/// Why a [`LoadShape`] is not usable as an arrival-rate function.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum LoadShapeError {
    /// A load level is negative, non-finite, or absurdly high (> 16×
    /// nominal capacity — almost certainly a units mistake).
    LoadOutOfRange(f64),
    /// A segment duration is not positive and finite.
    NonPositiveDuration(f64),
    /// A step's switch time lies outside `(0, duration)`.
    StepOutsideDuration {
        /// The switch time.
        at: f64,
        /// The segment duration.
        duration: f64,
    },
    /// A spike's `[start, start + width)` window is not inside the segment.
    SpikeOutsideDuration {
        /// The spike start time.
        start: f64,
        /// The spike width.
        width: f64,
        /// The segment duration.
        duration: f64,
    },
    /// A diurnal period is not positive and finite.
    NonPositivePeriod(f64),
    /// A diurnal amplitude is negative, non-finite, or larger than the
    /// mean (the rate would go negative).
    AmplitudeExceedsMean {
        /// The mean load.
        mean: f64,
        /// The swing amplitude.
        amplitude: f64,
    },
    /// A [`LoadShape::Sequence`] has no segments.
    EmptySequence,
    /// The shape never offers positive load, so no arrivals can be drawn.
    ZeroPeakLoad,
}

impl std::fmt::Display for LoadShapeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LoadShapeError::LoadOutOfRange(l) => {
                write!(f, "load level {l} is outside [0, 16]")
            }
            LoadShapeError::NonPositiveDuration(d) => {
                write!(f, "duration {d} must be positive and finite")
            }
            LoadShapeError::StepOutsideDuration { at, duration } => {
                write!(f, "step time {at} is outside (0, {duration})")
            }
            LoadShapeError::SpikeOutsideDuration {
                start,
                width,
                duration,
            } => write!(
                f,
                "spike window [{start}, {start} + {width}) is not inside [0, {duration})"
            ),
            LoadShapeError::NonPositivePeriod(p) => {
                write!(f, "period {p} must be positive and finite")
            }
            LoadShapeError::AmplitudeExceedsMean { mean, amplitude } => {
                write!(f, "amplitude {amplitude} exceeds mean load {mean}")
            }
            LoadShapeError::EmptySequence => write!(f, "a shape sequence needs segments"),
            LoadShapeError::ZeroPeakLoad => {
                write!(f, "shape never offers positive load")
            }
        }
    }
}

impl std::error::Error for LoadShapeError {}

/// Offered load (fraction of nominal capacity) as a function of time.
///
/// All durations and times are in seconds; all load levels are fractions of
/// one server's nominal capacity (scaled to a fleet by the sources, not
/// here). `load_at` is zero outside `[0, duration())`.
#[derive(Debug, Clone, PartialEq)]
pub enum LoadShape {
    /// Constant load for `duration` seconds.
    Steady {
        /// The constant load level.
        load: f64,
        /// Window length in seconds.
        duration: f64,
    },
    /// Linear ramp from `from` to `to` over `duration` seconds.
    Ramp {
        /// Load at `t = 0`.
        from: f64,
        /// Load at `t = duration`.
        to: f64,
        /// Window length in seconds.
        duration: f64,
    },
    /// A load step: `before` until `at`, then `after` until `duration`.
    Step {
        /// Load before the switch.
        before: f64,
        /// Load after the switch.
        after: f64,
        /// Switch time, strictly inside `(0, duration)`.
        at: f64,
        /// Window length in seconds.
        duration: f64,
    },
    /// A diurnal sinusoid: `mean + amplitude · sin(2πt / period)`.
    Diurnal {
        /// Mean load level.
        mean: f64,
        /// Swing amplitude (`0 ≤ amplitude ≤ mean`).
        amplitude: f64,
        /// One full day-night cycle, in seconds.
        period: f64,
        /// Window length in seconds (need not be a whole period).
        duration: f64,
    },
    /// Baseline load with a rectangular burst: `peak` during
    /// `[start, start + width)`, `base` elsewhere.
    Spike {
        /// Baseline load.
        base: f64,
        /// Load during the burst.
        peak: f64,
        /// Burst start time.
        start: f64,
        /// Burst width in seconds.
        width: f64,
        /// Window length in seconds.
        duration: f64,
    },
    /// Segments played back to back; segment `k` starts where `k − 1`
    /// ended. Subsumes arbitrary piecewise schedules.
    Sequence(Vec<LoadShape>),
}

impl LoadShape {
    /// Total window length in seconds.
    pub fn duration(&self) -> f64 {
        match self {
            LoadShape::Steady { duration, .. }
            | LoadShape::Ramp { duration, .. }
            | LoadShape::Step { duration, .. }
            | LoadShape::Diurnal { duration, .. }
            | LoadShape::Spike { duration, .. } => *duration,
            LoadShape::Sequence(parts) => parts.iter().map(LoadShape::duration).sum(),
        }
    }

    /// Offered load at time `t`; zero outside `[0, duration())`.
    pub fn load_at(&self, t: f64) -> f64 {
        if t < 0.0 || t >= self.duration() {
            return 0.0;
        }
        match self {
            LoadShape::Steady { load, .. } => *load,
            LoadShape::Ramp { from, to, duration } => from + (to - from) * t / duration,
            LoadShape::Step {
                before, after, at, ..
            } => {
                if t < *at {
                    *before
                } else {
                    *after
                }
            }
            LoadShape::Diurnal {
                mean,
                amplitude,
                period,
                ..
            } => {
                let phase = 2.0 * std::f64::consts::PI * t / period;
                (mean + amplitude * phase.sin()).max(0.0)
            }
            LoadShape::Spike {
                base,
                peak,
                start,
                width,
                ..
            } => {
                if t >= *start && t < start + width {
                    *peak
                } else {
                    *base
                }
            }
            LoadShape::Sequence(parts) => {
                let mut offset = 0.0;
                for part in parts {
                    let d = part.duration();
                    if t < offset + d {
                        return part.load_at(t - offset);
                    }
                    offset += d;
                }
                0.0
            }
        }
    }

    /// The maximum load the shape ever offers — the thinning envelope used
    /// by non-homogeneous Poisson sources.
    pub fn peak_load(&self) -> f64 {
        match self {
            LoadShape::Steady { load, .. } => *load,
            LoadShape::Ramp { from, to, .. } => from.max(*to),
            LoadShape::Step { before, after, .. } => before.max(*after),
            LoadShape::Diurnal {
                mean, amplitude, ..
            } => mean + amplitude,
            LoadShape::Spike { base, peak, .. } => base.max(*peak),
            LoadShape::Sequence(parts) => {
                parts.iter().map(LoadShape::peak_load).fold(0.0, f64::max)
            }
        }
    }

    /// Time-averaged load over the window (exact for every variant except
    /// [`LoadShape::Diurnal`], where partial periods make it approximate).
    /// Used to size run durations for a target request count.
    pub fn average_load(&self) -> f64 {
        match self {
            LoadShape::Steady { load, .. } => *load,
            LoadShape::Ramp { from, to, .. } => 0.5 * (from + to),
            LoadShape::Step {
                before,
                after,
                at,
                duration,
            } => (before * at + after * (duration - at)) / duration,
            LoadShape::Diurnal { mean, .. } => *mean,
            LoadShape::Spike {
                base,
                peak,
                start: _,
                width,
                duration,
            } => (base * (duration - width) + peak * width) / duration,
            LoadShape::Sequence(parts) => {
                let total = self.duration();
                parts
                    .iter()
                    .map(|p| p.average_load() * p.duration())
                    .sum::<f64>()
                    / total
            }
        }
    }

    /// Checks the shape is a usable arrival-rate function.
    ///
    /// # Errors
    ///
    /// Returns the first structural problem found: load levels outside
    /// `[0, 16]`, non-positive durations or periods, step/spike windows
    /// outside their segment, amplitudes exceeding the mean, empty
    /// sequences, or a shape that never offers positive load.
    pub fn validate(&self) -> Result<(), LoadShapeError> {
        self.validate_segment()?;
        if self.peak_load() <= 0.0 {
            return Err(LoadShapeError::ZeroPeakLoad);
        }
        Ok(())
    }

    fn validate_segment(&self) -> Result<(), LoadShapeError> {
        let check_load = |l: f64| {
            if l.is_finite() && (0.0..=16.0).contains(&l) {
                Ok(())
            } else {
                Err(LoadShapeError::LoadOutOfRange(l))
            }
        };
        let check_duration = |d: f64| {
            if d.is_finite() && d > 0.0 {
                Ok(())
            } else {
                Err(LoadShapeError::NonPositiveDuration(d))
            }
        };
        match self {
            LoadShape::Steady { load, duration } => {
                check_load(*load)?;
                check_duration(*duration)
            }
            LoadShape::Ramp { from, to, duration } => {
                check_load(*from)?;
                check_load(*to)?;
                check_duration(*duration)
            }
            LoadShape::Step {
                before,
                after,
                at,
                duration,
            } => {
                check_load(*before)?;
                check_load(*after)?;
                check_duration(*duration)?;
                if !at.is_finite() || *at <= 0.0 || *at >= *duration {
                    return Err(LoadShapeError::StepOutsideDuration {
                        at: *at,
                        duration: *duration,
                    });
                }
                Ok(())
            }
            LoadShape::Diurnal {
                mean,
                amplitude,
                period,
                duration,
            } => {
                check_load(*mean)?;
                check_duration(*duration)?;
                if !period.is_finite() || *period <= 0.0 {
                    return Err(LoadShapeError::NonPositivePeriod(*period));
                }
                if !amplitude.is_finite() || *amplitude < 0.0 || amplitude > mean {
                    return Err(LoadShapeError::AmplitudeExceedsMean {
                        mean: *mean,
                        amplitude: *amplitude,
                    });
                }
                Ok(())
            }
            LoadShape::Spike {
                base,
                peak,
                start,
                width,
                duration,
            } => {
                check_load(*base)?;
                check_load(*peak)?;
                check_duration(*duration)?;
                let inside = start.is_finite()
                    && width.is_finite()
                    && *start >= 0.0
                    && *width > 0.0
                    && start + width <= *duration;
                if !inside {
                    return Err(LoadShapeError::SpikeOutsideDuration {
                        start: *start,
                        width: *width,
                        duration: *duration,
                    });
                }
                Ok(())
            }
            LoadShape::Sequence(parts) => {
                if parts.is_empty() {
                    return Err(LoadShapeError::EmptySequence);
                }
                for part in parts {
                    part.validate_segment()?;
                }
                Ok(())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn steady_is_flat() {
        let s = LoadShape::Steady {
            load: 0.4,
            duration: 10.0,
        };
        assert_eq!(s.load_at(0.0), 0.4);
        assert_eq!(s.load_at(9.99), 0.4);
        assert_eq!(s.load_at(10.0), 0.0);
        assert_eq!(s.load_at(-1.0), 0.0);
        assert_eq!(s.peak_load(), 0.4);
        assert_eq!(s.average_load(), 0.4);
        s.validate().unwrap();
    }

    #[test]
    fn ramp_interpolates_linearly() {
        let s = LoadShape::Ramp {
            from: 0.2,
            to: 0.6,
            duration: 4.0,
        };
        assert!((s.load_at(0.0) - 0.2).abs() < 1e-12);
        assert!((s.load_at(2.0) - 0.4).abs() < 1e-12);
        assert!((s.load_at(3.999) - 0.6).abs() < 1e-3);
        assert_eq!(s.peak_load(), 0.6);
        assert!((s.average_load() - 0.4).abs() < 1e-12);
        s.validate().unwrap();
    }

    #[test]
    fn step_switches_at_the_boundary() {
        let s = LoadShape::Step {
            before: 0.3,
            after: 0.7,
            at: 5.0,
            duration: 10.0,
        };
        assert_eq!(s.load_at(4.999), 0.3);
        assert_eq!(s.load_at(5.0), 0.7);
        assert!((s.average_load() - 0.5).abs() < 1e-12);
        s.validate().unwrap();
    }

    #[test]
    fn diurnal_swings_about_the_mean() {
        let s = LoadShape::Diurnal {
            mean: 0.4,
            amplitude: 0.2,
            period: 8.0,
            duration: 8.0,
        };
        // Quarter period: peak of the sinusoid.
        assert!((s.load_at(2.0) - 0.6).abs() < 1e-12);
        // Three-quarter period: trough.
        assert!((s.load_at(6.0) - 0.2).abs() < 1e-12);
        assert!((s.peak_load() - 0.6).abs() < 1e-12);
        assert_eq!(s.average_load(), 0.4);
        s.validate().unwrap();
    }

    #[test]
    fn spike_is_rectangular() {
        let s = LoadShape::Spike {
            base: 0.2,
            peak: 0.9,
            start: 3.0,
            width: 1.0,
            duration: 10.0,
        };
        assert_eq!(s.load_at(2.999), 0.2);
        assert_eq!(s.load_at(3.0), 0.9);
        assert_eq!(s.load_at(3.999), 0.9);
        assert_eq!(s.load_at(4.0), 0.2);
        assert!((s.average_load() - (0.2 * 9.0 + 0.9) / 10.0).abs() < 1e-12);
        s.validate().unwrap();
    }

    #[test]
    fn sequence_concatenates_segments() {
        let s = LoadShape::Sequence(vec![
            LoadShape::Steady {
                load: 0.2,
                duration: 2.0,
            },
            LoadShape::Ramp {
                from: 0.2,
                to: 0.8,
                duration: 2.0,
            },
        ]);
        assert_eq!(s.duration(), 4.0);
        assert_eq!(s.load_at(1.0), 0.2);
        assert!((s.load_at(3.0) - 0.5).abs() < 1e-12);
        assert_eq!(s.load_at(4.0), 0.0);
        assert_eq!(s.peak_load(), 0.8);
        assert!((s.average_load() - (0.2 * 2.0 + 0.5 * 2.0) / 4.0).abs() < 1e-12);
        s.validate().unwrap();
    }

    #[test]
    fn validation_rejects_bad_shapes() {
        assert_eq!(
            LoadShape::Steady {
                load: -0.1,
                duration: 1.0
            }
            .validate(),
            Err(LoadShapeError::LoadOutOfRange(-0.1))
        );
        assert_eq!(
            LoadShape::Steady {
                load: 0.4,
                duration: 0.0
            }
            .validate(),
            Err(LoadShapeError::NonPositiveDuration(0.0))
        );
        assert_eq!(
            LoadShape::Step {
                before: 0.2,
                after: 0.4,
                at: 5.0,
                duration: 5.0
            }
            .validate(),
            Err(LoadShapeError::StepOutsideDuration {
                at: 5.0,
                duration: 5.0
            })
        );
        assert_eq!(
            LoadShape::Diurnal {
                mean: 0.3,
                amplitude: 0.4,
                period: 10.0,
                duration: 10.0
            }
            .validate(),
            Err(LoadShapeError::AmplitudeExceedsMean {
                mean: 0.3,
                amplitude: 0.4
            })
        );
        assert_eq!(
            LoadShape::Spike {
                base: 0.2,
                peak: 0.8,
                start: 9.5,
                width: 1.0,
                duration: 10.0
            }
            .validate(),
            Err(LoadShapeError::SpikeOutsideDuration {
                start: 9.5,
                width: 1.0,
                duration: 10.0
            })
        );
        assert_eq!(
            LoadShape::Sequence(vec![]).validate(),
            Err(LoadShapeError::EmptySequence)
        );
        assert_eq!(
            LoadShape::Steady {
                load: 0.0,
                duration: 1.0
            }
            .validate(),
            Err(LoadShapeError::ZeroPeakLoad)
        );
    }
}
