//! The Rubik analytical DVFS controller and the baseline schemes it is
//! compared against.
//!
//! This crate implements the paper's primary contribution (Sec. 4):
//!
//! * [`RubikController`] — on every request arrival and completion, find the
//!   lowest frequency `f ≥ max_i c_i / (L − t_i − m_i)` (Eq. 2) that meets
//!   the tail-latency bound for every pending request, where `c_i` and `m_i`
//!   are tail completion cycles / memory times read from precomputed
//!   [`TargetTailTables`], built from service-demand distributions profiled
//!   online by the [`OnlineProfiler`]. A slow PI [`FeedbackController`] trims
//!   the internal latency target from measured tail latency (Sec. 4.2).
//!
//! and the comparison schemes of Sec. 5:
//!
//! * [`FixedFrequencyPolicy`] (re-exported from `rubik-sim`) — the baseline,
//! * [`StaticOracle`] — the lowest static frequency that meets the bound for
//!   a given trace (an upper bound on feedback controllers like Pegasus),
//! * [`DynamicOracle`] — the per-request frequency schedule that minimizes
//!   energy subject to the tail bound,
//! * [`AdrenalineOracle`] — an idealized Adrenaline: perfect long/short
//!   request classification, offline-tuned boosted/unboosted frequencies,
//! * [`PegasusPolicy`] — a pure feedback controller that adjusts frequency
//!   from measured tail latency only.
//!
//! # Example
//!
//! ```
//! use rubik_core::{RubikConfig, RubikController};
//! use rubik_sim::{Server, SimConfig};
//! use rubik_workloads::{AppProfile, WorkloadGenerator};
//!
//! let profile = AppProfile::masstree();
//! let mut generator = WorkloadGenerator::new(profile, 1);
//! let trace = generator.steady_trace(0.3, 2_000);
//!
//! let config = SimConfig::default();
//! let bound = 800e-6; // 800 µs tail-latency bound
//! let mut rubik = RubikController::new(RubikConfig::new(bound), config.dvfs.clone());
//! let result = Server::new(config).run(&trace, &mut rubik);
//! assert!(result.tail_latency(0.95).unwrap() <= bound * 1.2);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod adrenaline;
pub mod dynamic_oracle;
pub mod feedback;
pub mod pegasus;
pub mod profiler;
pub mod replay;
pub mod rubik;
pub mod static_oracle;
pub mod tables;

pub use adrenaline::{AdrenalineOracle, AdrenalinePolicy};
pub use dynamic_oracle::{DynamicOracle, OracleSchedule};
pub use feedback::FeedbackController;
pub use pegasus::{PegasusConfig, PegasusPolicy};
pub use profiler::OnlineProfiler;
pub use replay::{replay, replay_energy, replay_tail};
pub use rubik::{RubikConfig, RubikController, RubikStats};
pub use static_oracle::StaticOracle;
pub use tables::{TableBuilder, TargetTailTables};

pub use rubik_sim::FixedFrequencyPolicy;
