//! RubikColoc: colocating batch work with a latency-critical application
//! (the paper's Sec. 6–7).
//!
//! One colocated core runs xapian (web search) at 60% load while batch work
//! from a SPEC-like mix fills the idle gaps. The example compares the four
//! colocation schemes of Fig. 15 and then runs a small datacenter-scale
//! comparison in the spirit of Fig. 16.
//!
//! ```text
//! cargo run --release --example colocation
//! ```

use rubik::coloc::ColocRunSpec;
use rubik::{
    AppProfile, BatchMix, ColocScheme, ColocatedCore, DatacenterComparison, DatacenterConfig,
};

fn main() {
    let profile = AppProfile::xapian();
    let mix = BatchMix::paper_mixes(3)[0].clone();
    let core = ColocatedCore::new();
    let requests = 3_000;
    let bound = core.latency_bound(&profile, requests, 11);

    println!(
        "Colocated core: {} @ 60% load + batch mix {:?}",
        profile.name(),
        mix.apps.iter().map(|a| a.name()).collect::<Vec<_>>()
    );
    println!("LC tail-latency bound: {:.2} ms", bound * 1e3);
    println!();
    println!(
        "{:<12} {:>18} {:>18} {:>20}",
        "scheme", "normalized tail", "batch work/s", "avg core power (W)"
    );
    for scheme in ColocScheme::all() {
        let outcome = core.run(
            &ColocRunSpec::new(scheme, &profile, &mix, bound)
                .with_load(0.6)
                .with_requests(requests)
                .with_seed(21),
        );
        println!(
            "{:<12} {:>18.2} {:>18.2} {:>20.2}",
            scheme.name(),
            outcome.normalized_tail,
            outcome.batch_work / outcome.duration,
            outcome.average_power(),
        );
    }

    println!();
    println!("Datacenter comparison (segregated vs RubikColoc), 20-server toy scale:");
    let dc = DatacenterComparison::new(DatacenterConfig::small());
    println!(
        "{:>8} {:>22} {:>18} {:>14}",
        "LC load", "power vs segregated", "servers vs segr.", "worst tail"
    );
    for &load in &[0.2, 0.4, 0.6] {
        let p = dc.evaluate(load);
        println!(
            "{:>7.0}% {:>21.0}% {:>17.0}% {:>14.2}",
            load * 100.0,
            p.coloc_power / p.segregated_power * 100.0,
            p.coloc_servers as f64 / p.segregated_servers as f64 * 100.0,
            p.worst_normalized_tail,
        );
    }
}
