//! Byte-identical figure output across controller-internals changes.
//!
//! The incremental-rebuild work (version gating, the persistent
//! `TableBuilder`, incremental profiler histograms) is contractually
//! invisible: figure stdout must not change by a single byte. These tests
//! pin that by running the figure binaries at a small, fast grid size and
//! comparing against checked-in golden captures (`tests/golden/*.txt`)
//! taken before the rebuild path was made incremental.
//!
//! If a **deliberate** output-affecting change lands (new columns, model
//! changes), regenerate the fixtures with the exact commands below and
//! explain the diff in the commit:
//!
//! ```text
//! target/release/fig06_power_savings --requests 80 --seed 3 > crates/bench/tests/golden/fig06_power_savings.txt
//! target/release/fig15_coloc_tail    --requests 80 --seed 3 > crates/bench/tests/golden/fig15_coloc_tail.txt
//! target/release/fig09_load_sweep    --requests 60 --seed 5 > crates/bench/tests/golden/fig09_load_sweep.txt
//! target/release/fig_fleet           --requests 60 --seed 7 > crates/bench/tests/golden/fig_fleet.txt
//! target/release/trace_report --scenario fleet_faults --fleet 12 --crashed 3 \
//!     --requests 40 --seed 2015 > crates/bench/tests/golden/trace_report_fleet_faults.txt
//! ```

use std::process::Command;

fn assert_matches_golden(bin: &str, args: &[&str], fixture: &str) {
    let output = Command::new(bin)
        .args(args)
        .output()
        .unwrap_or_else(|e| panic!("failed to run {bin}: {e}"));
    assert!(
        output.status.success(),
        "{bin} exited with {:?}: {}",
        output.status,
        String::from_utf8_lossy(&output.stderr)
    );
    let golden_path = format!("{}/tests/golden/{fixture}", env!("CARGO_MANIFEST_DIR"));
    let golden = std::fs::read(&golden_path)
        .unwrap_or_else(|e| panic!("missing golden fixture {golden_path}: {e}"));
    assert!(
        output.stdout == golden,
        "{bin} stdout diverged from {fixture}:\n--- golden ---\n{}\n--- actual ---\n{}",
        String::from_utf8_lossy(&golden),
        String::from_utf8_lossy(&output.stdout)
    );
}

#[test]
fn fig06_stdout_is_byte_identical_to_golden() {
    assert_matches_golden(
        env!("CARGO_BIN_EXE_fig06_power_savings"),
        &["--requests", "80", "--seed", "3"],
        "fig06_power_savings.txt",
    );
}

#[test]
fn fig09_stdout_is_byte_identical_to_golden() {
    assert_matches_golden(
        env!("CARGO_BIN_EXE_fig09_load_sweep"),
        &["--requests", "60", "--seed", "5"],
        "fig09_load_sweep.txt",
    );
}

#[test]
fn fig15_stdout_is_byte_identical_to_golden() {
    assert_matches_golden(
        env!("CARGO_BIN_EXE_fig15_coloc_tail"),
        &["--requests", "80", "--seed", "3"],
        "fig15_coloc_tail.txt",
    );
}

#[test]
fn trace_report_attribution_is_byte_identical_to_golden() {
    // Pins the telemetry stack end to end: deterministic trace recording
    // through the cluster driver, trace assembly, and the tail-attribution
    // decomposition for the blind vs health-aware fleet_faults runs.
    assert_matches_golden(
        env!("CARGO_BIN_EXE_trace_report"),
        &[
            "--scenario",
            "fleet_faults",
            "--fleet",
            "12",
            "--crashed",
            "3",
            "--requests",
            "40",
            "--seed",
            "2015",
        ],
        "trace_report_fleet_faults.txt",
    );
}

#[test]
fn trace_report_file_mode_reproduces_the_scenario_attribution() {
    // --trace-out round-trip: the health-aware run's trace written by
    // scenario mode, re-read in file mode, must yield the same table.
    let dir = std::env::temp_dir().join("rubik_trace_report_roundtrip");
    std::fs::create_dir_all(&dir).unwrap();
    let trace_path = dir.join("aware.json");
    let trace_path = trace_path.to_str().unwrap();

    let bin = env!("CARGO_BIN_EXE_trace_report");
    let scenario = Command::new(bin)
        .args([
            "--scenario",
            "fleet_faults",
            "--fleet",
            "8",
            "--crashed",
            "2",
            "--requests",
            "30",
            "--seed",
            "7",
            "--trace-out",
            trace_path,
        ])
        .output()
        .unwrap();
    assert!(
        scenario.status.success(),
        "scenario mode failed: {}",
        String::from_utf8_lossy(&scenario.stderr)
    );
    let stdout = String::from_utf8(scenario.stdout).unwrap();
    // The health-aware table is the last attribution block printed.
    let aware_table = stdout
        .rfind("p95 tail attribution")
        .map(|i| &stdout[i..])
        .expect("no attribution table in scenario stdout");

    let file_mode = Command::new(bin).arg(trace_path).output().unwrap();
    assert!(
        file_mode.status.success(),
        "file mode failed: {}",
        String::from_utf8_lossy(&file_mode.stderr)
    );
    let file_stdout = String::from_utf8(file_mode.stdout).unwrap();
    assert!(
        file_stdout.contains(aware_table),
        "file-mode attribution diverged from the scenario run:\n\
         --- scenario ---\n{aware_table}\n--- file mode ---\n{file_stdout}"
    );
    let _ = std::fs::remove_file(trace_path);
}

#[test]
fn fig_fleet_stdout_is_byte_identical_to_golden() {
    // Pins the whole fleet-management stack end to end: budget apportioning
    // and waterfilling (PegasusFleet), queue migration (ThresholdMigrator),
    // heterogeneous FleetSpec fleets, and capacity-aware routing.
    assert_matches_golden(
        env!("CARGO_BIN_EXE_fig_fleet"),
        &["--requests", "60", "--seed", "7"],
        "fig_fleet.txt",
    );
}
