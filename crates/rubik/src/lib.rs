//! Rubik: fast analytical power management for latency-critical systems.
//!
//! This is the facade crate of the Rubik reproduction (MICRO-48, 2015). It
//! re-exports the whole public API so applications can depend on a single
//! crate:
//!
//! * [`stats`] — histograms, convolution, Gaussian tails, percentiles,
//! * [`sim`] — the discrete-event server simulator with per-core DVFS,
//! * [`workloads`] — the five latency-critical application models, load
//!   profiles, and SPEC-like batch applications,
//! * [`power`] — core and full-system power models,
//! * [`core`] — the Rubik controller and the baseline schemes
//!   (fixed-frequency, StaticOracle, DynamicOracle, AdrenalineOracle,
//!   Pegasus-style feedback),
//! * [`coloc`] — RubikColoc: colocation of batch and latency-critical work,
//! * [`load`] — streaming open-loop arrival sources: steady Poisson,
//!   time-varying shapes (ramps, steps, diurnal sinusoids, spikes) drawn as
//!   non-homogeneous Poisson processes, deterministic multi-app merges, and
//!   file-backed streaming trace replay for `Cluster::run_streamed`,
//! * [`cluster`] — multi-server serving: fleets of stepped [`sim`] servers
//!   (heterogeneous via [`FleetSpec`]) behind a routing policy, with
//!   per-server Rubik controllers, fleet-level power capping
//!   ([`PegasusFleet`]), and queue migration ([`ThresholdMigrator`]),
//! * [`telemetry`] — zero-cost-when-disabled observability for [`cluster`]:
//!   deterministic request lifecycle traces ([`TraceLog`]), per-epoch fleet
//!   time series, tail-latency attribution, and JSON / Chrome `trace_event`
//!   export.
//!
//! The most common types are also re-exported at the crate root.
//!
//! # Quickstart
//!
//! ```
//! use rubik::{
//!     AppProfile, RubikConfig, RubikController, Server, SimConfig, WorkloadGenerator,
//! };
//!
//! // A masstree-like key-value store at 40% load.
//! let profile = AppProfile::masstree();
//! let mut generator = WorkloadGenerator::new(profile.clone(), 1);
//! let trace = generator.steady_trace(0.4, 1_000);
//!
//! // Meet a 95th-percentile latency bound of 3x the mean service time.
//! let bound = 3.0 * profile.mean_service_time();
//! let config = SimConfig::default();
//! let mut rubik = RubikController::new(RubikConfig::new(bound), config.dvfs.clone());
//! let result = Server::new(config).run(&trace, &mut rubik);
//!
//! assert!(result.tail_latency(0.95).unwrap() <= bound * 1.2);
//! ```

#![warn(missing_docs)]

pub use rubik_cluster as cluster;
pub use rubik_coloc as coloc;
pub use rubik_core as core;
pub use rubik_load as load;
pub use rubik_power as power;
pub use rubik_sim as sim;
pub use rubik_stats as stats;
pub use rubik_sweep as sweep;
pub use rubik_telemetry as telemetry;
pub use rubik_workloads as workloads;

pub use rubik_cluster::{
    AvailabilityStats, ClassTotals, Cluster, ClusterError, ClusterOutcome, CoreClass,
    CorrelatedFaults, FailureTopology, FaultEvent, FaultPlan, FleetCommand, FleetController,
    FleetSpec, HealthAware, JoinShortestQueue, Migration, Migrator, Passthrough, PegasusFleet,
    PowerAware, RequestPolicy, RoundRobin, Router, ServerHealth, ServerPowerView, ServerView,
    ShardSpec, StochasticFaults, ThresholdMigrator,
};
pub use rubik_coloc::{
    ColocOutcome, ColocScheme, ColocatedCore, DatacenterComparison, DatacenterConfig,
    DatacenterContext,
};
pub use rubik_core::{
    AdrenalineOracle, AdrenalinePolicy, DynamicOracle, FixedFrequencyPolicy, PegasusConfig,
    PegasusPolicy, RubikConfig, RubikController, StaticOracle, TableBuilder, TargetTailTables,
};
pub use rubik_load::{
    ArrivalSource, LoadShape, MergedSource, PoissonSource, ShapedSource, StreamingTraceReader,
    StreamingTraceWriter, TraceSource,
};
pub use rubik_power::{CorePowerModel, ServerPowerModel, Tdp};
pub use rubik_sim::{
    DvfsConfig, DvfsPolicy, Freq, RequestRecord, RequestSpec, RunResult, Server, ServerSim,
    SimConfig, SimEvent, Trace,
};
pub use rubik_stats::Histogram;
pub use rubik_sweep::{SweepExecutor, SweepRun, SweepSpec};
pub use rubik_telemetry::{Telemetry, TraceLog};
pub use rubik_workloads::{AppProfile, BatchApp, BatchMix, LoadProfile, WorkloadGenerator};
