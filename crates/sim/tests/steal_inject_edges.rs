//! Edge cases of the `steal_queued` / `remove_queued` / `inject` surface
//! that the cluster fault path leans on: draining closed or empty servers,
//! injecting at or around the receiver's clock, and steal-then-reinject
//! preserving a request's original arrival time across a failure drain.

use rubik_sim::{FixedFrequencyPolicy, RequestSpec, ServerSim, SimConfig};

fn sim() -> ServerSim<FixedFrequencyPolicy> {
    let config = SimConfig::paper_simulated();
    let policy = FixedFrequencyPolicy::new(config.dvfs.nominal());
    ServerSim::new(config, policy)
}

#[test]
fn steal_from_an_empty_sim_returns_none() {
    let mut s = sim();
    assert!(s.steal_queued().is_none());
    assert!(s.remove_queued(0).is_none());
}

#[test]
fn steal_from_a_closed_drained_sim_returns_none() {
    let mut s = sim();
    s.offer(RequestSpec::new(0, 0.0, 2.4e6, 0.0));
    s.close();
    s.run_to_completion();
    assert!(s.steal_queued().is_none(), "nothing queued after the drain");
    assert!(s.remove_queued(0).is_none(), "completed work is not queued");
    assert_eq!(s.records().len(), 1);
}

#[test]
#[should_panic(expected = "injection at")]
fn inject_before_the_receivers_clock_panics() {
    let mut s = sim();
    s.offer(RequestSpec::new(0, 0.0, 2.4e6, 0.0));
    s.drain_until(0.0);
    s.coast_to(0.5e-3);
    // The receiver's clock is at 0.5 ms; injecting at 0.1 ms is the past.
    s.inject(0.1e-3, RequestSpec::new(1, 0.0, 2.4e6, 0.0));
}

#[test]
fn inject_into_a_closed_sim_is_allowed() {
    // Migration legitimately rebalances backlog while a fleet drains.
    let mut s = sim();
    s.close();
    s.inject(0.01, RequestSpec::new(7, 0.002, 2.4e6, 0.0));
    s.run_to_completion();
    assert_eq!(s.records().len(), 1);
    let rec = s.records()[0];
    assert_eq!(rec.id, 7);
    assert_eq!(rec.arrival, 0.002, "original arrival preserved");
    assert!((rec.start - 0.01).abs() < 1e-12);
}

#[test]
fn steal_then_reinject_preserves_arrival_under_a_failure_drain() {
    // A donor crashes with a backlog; the drain hands its queue to a healthy
    // receiver. Every rescued record must keep its original arrival so
    // end-to-end latency charges the time spent stranded on the dead server.
    let mut donor = sim();
    let mut receiver = sim();
    for id in 0..4 {
        donor.offer(RequestSpec::new(id, 0.0, 2.4e6, 0.0));
    }
    donor.drain_until(0.0);
    assert_eq!(donor.queued_len(), 3);

    let lost = donor.fail(0.5e-3);
    assert_eq!(lost.map(|s| s.id), Some(0), "in-service request surfaced");

    // Drain the dead queue back-to-front and reinject in arrival order.
    let mut rescued = Vec::new();
    while let Some(spec) = donor.steal_queued() {
        rescued.push(spec);
    }
    rescued.reverse();
    assert_eq!(
        rescued.iter().map(|s| s.id).collect::<Vec<_>>(),
        vec![1, 2, 3]
    );
    for spec in rescued {
        receiver.drain_until(0.5e-3);
        receiver.inject(0.5e-3, spec);
    }

    donor.close();
    receiver.close();
    donor.run_to_completion();
    receiver.run_to_completion();
    assert!(donor.records().is_empty());
    let recs = receiver.finish();
    assert_eq!(recs.records().len(), 3);
    for rec in recs.records() {
        assert_eq!(rec.arrival, 0.0, "arrival survived the failure drain");
        assert!(rec.start >= 0.5e-3, "service restarted after the crash");
        // Latency spans the stranded wait plus queueing on the receiver.
        assert!(rec.latency() >= 0.5e-3 + 1e-3 - 1e-9);
    }
}

#[test]
fn remove_queued_extracts_a_specific_request_without_disturbing_fifo_order() {
    let mut s = sim();
    for id in 0..4 {
        s.offer(RequestSpec::new(id, 0.0, 2.4e6, 0.0));
    }
    s.drain_until(0.0);
    assert_eq!(s.queued_len(), 3);
    // Pull the middle of the queue (a timed-out request being retried).
    let pulled = s.remove_queued(2).expect("id 2 is queued");
    assert_eq!(pulled.id, 2);
    // The request in service is never removable.
    assert!(s.remove_queued(0).is_none());
    s.close();
    s.run_to_completion();
    let order: Vec<u64> = s.records().iter().map(|r| r.id).collect();
    assert_eq!(order, vec![0, 1, 3], "remaining FIFO order undisturbed");
}
