//! RubikColoc: colocating batch and latency-critical work (paper Sec. 6–7).
//!
//! Rubik by itself cuts active core power but not idle platform power. The
//! paper's second contribution, RubikColoc, fills a latency-critical (LC)
//! server's idle core cycles with batch work:
//!
//! * the memory system (LLC capacity and DRAM bandwidth) is partitioned
//!   between LC and batch applications, removing the large, slow-to-recover
//!   interference ([`MemorySystemConfig`]),
//! * cores are time-shared: the LC application preempts batch work whenever it
//!   has pending requests and yields the core when idle
//!   ([`ColocatedCore`]),
//! * the residual interference — cold private caches, branch predictors and
//!   TLBs after batch work ran — is small-inertia state that Rubik's
//!   fine-grain DVFS compensates for ([`CoreInterferenceModel`]),
//! * at datacenter scale, colocated servers absorb batch work from dedicated
//!   batch servers, cutting both total power and the number of machines
//!   ([`datacenter`], Fig. 16).
//!
//! Four colocation schemes are modelled (Fig. 15): [`ColocScheme::RubikColoc`],
//! [`ColocScheme::StaticColoc`], and the hardware-controlled
//! [`ColocScheme::HwThroughput`] / [`ColocScheme::HwThroughputPerWatt`].

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod datacenter;
pub mod interference;
pub mod partition;
pub mod runner;
pub mod schemes;

pub use datacenter::{DatacenterComparison, DatacenterConfig, DatacenterContext, DatacenterPoint};
pub use interference::CoreInterferenceModel;
pub use partition::MemorySystemConfig;
pub use runner::{ColocOutcome, ColocRunSpec, ColocatedCore};
pub use schemes::ColocScheme;
