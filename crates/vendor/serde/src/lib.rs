//! Offline stand-in for `serde`.
//!
//! Exposes `Serialize` / `Deserialize` as *both* marker traits and no-op
//! derive macros under the same names, exactly like real serde with the
//! `derive` feature, so `use serde::{Deserialize, Serialize};` plus
//! `#[derive(Serialize, Deserialize)]` compile unchanged. No serialization
//! code is generated; persistence in this workspace is hand-rolled
//! (`rubik-workloads::trace_io`).

pub use serde_derive::{Deserialize, Serialize};

/// Marker trait mirroring `serde::Serialize`.
pub trait Serialize {}

/// Marker trait mirroring `serde::Deserialize`.
pub trait Deserialize<'de> {}
