//! Ablations of Rubik's design choices (DESIGN.md Sec. 5):
//!
//! * octile progress rows vs a single row vs 32 rows,
//! * the Gaussian-approximation cutoff (4 vs 16 vs 64 explicit positions).
//!
//! The bench measures table-construction cost for each configuration; the
//! accuracy side of the ablation is covered by unit tests in
//! `rubik-core::tables`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use rubik::core::{OnlineProfiler, TargetTailTables};
use rubik::stats::DeterministicRng;

fn histograms() -> (rubik::Histogram, rubik::Histogram) {
    let mut profiler = OnlineProfiler::new(4096);
    let mut rng = DeterministicRng::new(3);
    for _ in 0..4096 {
        profiler.record(rng.lognormal(6e5, 0.5), rng.lognormal(80e-6, 0.5));
    }
    (
        profiler.compute_histogram().unwrap(),
        profiler.membound_histogram().unwrap(),
    )
}

fn bench_progress_rows(c: &mut Criterion) {
    let (compute, memory) = histograms();
    let mut group = c.benchmark_group("ablation_progress_rows");
    for &rows in &[1usize, 4, 8, 32] {
        group.bench_with_input(BenchmarkId::from_parameter(rows), &rows, |b, &rows| {
            b.iter(|| TargetTailTables::build_with(&compute, &memory, 0.95, rows, 16))
        });
    }
    group.finish();
}

fn bench_gaussian_cutoff(c: &mut Criterion) {
    let (compute, memory) = histograms();
    let mut group = c.benchmark_group("ablation_gaussian_cutoff");
    for &cutoff in &[4usize, 16, 64] {
        group.bench_with_input(
            BenchmarkId::from_parameter(cutoff),
            &cutoff,
            |b, &cutoff| {
                b.iter(|| TargetTailTables::build_with(&compute, &memory, 0.95, 8, cutoff))
            },
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_progress_rows, bench_gaussian_cutoff
}
criterion_main!(benches);
