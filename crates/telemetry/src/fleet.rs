//! Per-epoch fleet time series.
//!
//! The cluster driver already meters power per control epoch for the fleet
//! controller; the [`FleetRecorder`] extends that metering into a retained
//! time series sampled on its own (usually finer) epoch: fleet power, queue
//! depths, in-flight counts, per-server DVFS state, and cumulative
//! retry/timeout counters.

use serde::{Deserialize, Serialize};

/// Snapshot of one server at a sample boundary.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct ServerSample {
    /// Requests waiting in the server's queue.
    pub queued: u32,
    /// Requests queued or in service.
    pub in_flight: u32,
    /// DVFS frequency at the sample instant, in MHz.
    pub freq_mhz: u32,
    /// Mean power over the sample window, in watts.
    pub power: f64,
    /// Whether the server was crashed at the sample instant.
    pub down: bool,
}

/// One fleet-wide sample window `[start, end)`.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct EpochSample {
    /// Window start time.
    pub start: f64,
    /// Window end time (the sample instant).
    pub end: f64,
    /// Mean fleet power over the window, in watts.
    pub power: f64,
    /// Total requests queued across the fleet at the sample instant.
    pub queued: u32,
    /// Total requests in flight (queued + in service) at the sample instant.
    pub in_flight: u32,
    /// Requests that completed inside this window (filled at finalize).
    pub completions: u32,
    /// Cumulative retries issued up to the sample instant.
    pub retries: u64,
    /// Cumulative client timeouts up to the sample instant.
    pub timeouts: u64,
    /// Per-server detail, indexed by server.
    pub per_server: Vec<ServerSample>,
}

impl EpochSample {
    /// Window length.
    pub fn duration(&self) -> f64 {
        self.end - self.start
    }
}

/// Retained per-epoch fleet time series.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct FleetRecorder {
    epochs: Vec<EpochSample>,
}

impl FleetRecorder {
    /// Append one sample window. Windows must be recorded in time order.
    pub fn record(&mut self, sample: EpochSample) {
        debug_assert!(
            self.epochs.last().is_none_or(|p| p.end <= sample.start),
            "fleet samples must be recorded in time order"
        );
        self.epochs.push(sample);
    }

    /// The recorded sample windows, in time order.
    pub fn epochs(&self) -> &[EpochSample] {
        &self.epochs
    }

    /// Number of recorded windows.
    pub fn len(&self) -> usize {
        self.epochs.len()
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.epochs.is_empty()
    }

    /// Consume the recorder and return the raw series.
    pub fn into_epochs(self) -> Vec<EpochSample> {
        self.epochs
    }

    /// Fill [`EpochSample::completions`] by bucketing completion times into
    /// the recorded windows. A completion lands in the window whose
    /// `[start, end)` span contains it; completions at or past the final
    /// window's `end` are credited to the final window.
    pub fn bucket_completions(&mut self, completion_times: &mut [f64]) {
        if self.epochs.is_empty() {
            return;
        }
        completion_times.sort_by(|a, b| a.partial_cmp(b).expect("finite completion times"));
        let mut cursor = 0;
        let last = self.epochs.len() - 1;
        for (i, epoch) in self.epochs.iter_mut().enumerate() {
            let mut count = 0u32;
            while cursor < completion_times.len()
                && (completion_times[cursor] < epoch.end || i == last)
            {
                count += 1;
                cursor += 1;
            }
            epoch.completions = count;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn window(start: f64, end: f64) -> EpochSample {
        EpochSample {
            start,
            end,
            ..EpochSample::default()
        }
    }

    #[test]
    fn completions_bucket_into_their_windows() {
        let mut rec = FleetRecorder::default();
        rec.record(window(0.0, 1.0));
        rec.record(window(1.0, 2.0));
        rec.record(window(2.0, 2.5));
        let mut times = vec![0.5, 0.9, 1.0, 2.4, 2.5, 7.0];
        rec.bucket_completions(&mut times);
        let counts: Vec<u32> = rec.epochs().iter().map(|e| e.completions).collect();
        // 2.5 and 7.0 land past the final window's end and are credited to it.
        assert_eq!(counts, vec![2, 1, 3]);
    }

    #[test]
    fn empty_recorder_ignores_completions() {
        let mut rec = FleetRecorder::default();
        rec.bucket_completions(&mut [1.0]);
        assert!(rec.is_empty());
    }
}
