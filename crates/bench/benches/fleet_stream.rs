//! Streamed fleet serving under time-varying load: a 100-server Rubik fleet
//! fed by `Cluster::run_streamed` from a live non-homogeneous Poisson source
//! (a diurnal swing followed by a load step), with a `PegasusFleet` cap
//! re-apportioning a 300 W global budget every epoch.
//!
//! This is the acceptance experiment for the `rubik-load` streaming layer:
//! the arrival stream is never materialized as a `Trace` (memory stays
//! O(in-flight) — `stream_alloc.rs` pins that with a counting allocator);
//! the per-server Rubik controllers are seeded from a short drained prefix
//! of a twin source; and the cap must *hold* — the max epoch-window power at
//! or under the budget — through both the diurnal trough-to-peak swing and
//! the step up to the high plateau.
//!
//! Criterion tracks the wall time of the capped streamed runs in
//! `BENCH_controller.json`; the experiment's power/tail numbers are merged
//! into the `"fleet_stream"` section of `BENCH_cluster.json`.
//!
//! Env knobs: `RUBIK_FLEET_STREAM_REQUESTS` (default 60) sets the expected
//! requests per server; `RUBIK_BENCH_SAMPLE_MS` / `RUBIK_BENCH_SAMPLES` are
//! the usual criterion smoke knobs.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use rubik::cluster::{PegasusFleet, RoundRobin};
use rubik::load::{drain_to_trace, ShapedSource};
use rubik::{
    AppProfile, Cluster, ClusterOutcome, CorePowerModel, LoadShape, RubikConfig, RubikController,
    RunResult, SimConfig, WorkloadGenerator,
};

const BENCH_JSON: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_controller.json");
const CLUSTER_JSON: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_cluster.json");

const FLEET: usize = 100;
/// Watts per server: far under the 6 W a busy core draws at nominal, so the
/// apportioned ceilings genuinely bind through the diurnal peak.
const BUDGET_PER_SERVER: f64 = 3.0;
/// Fleet-controller epoch; short enough that a bench-sized run spans many
/// epochs on both sides of the load step.
const EPOCH: f64 = 0.02;
const SEED: u64 = 2015;

/// Diurnal per-server loads: a 0.45 mean with a +/-0.2 swing, then a step
/// up to a steady 0.65 plateau.
const DIURNAL_MEAN: f64 = 0.45;
const DIURNAL_AMPLITUDE: f64 = 0.2;
const STEP_LOAD: f64 = 0.65;

fn requests_per_server() -> usize {
    std::env::var("RUBIK_FLEET_STREAM_REQUESTS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(60)
}

/// Two diurnal periods over the first two thirds of the window, then the
/// step to the high plateau for the final third.
fn shape(duration: f64) -> LoadShape {
    let swing = 2.0 * duration / 3.0;
    LoadShape::Sequence(vec![
        LoadShape::Diurnal {
            mean: DIURNAL_MEAN,
            amplitude: DIURNAL_AMPLITUDE,
            period: swing / 2.0,
            duration: swing,
        },
        LoadShape::Steady {
            load: STEP_LOAD,
            duration: duration / 3.0,
        },
    ])
}

/// A fresh live source over the shaped window. Same seed every call: the
/// capped, uncapped, and criterion-timed runs all see the identical stream,
/// and the controller-seeding prefix is drained from the same twin.
fn source(profile: &AppProfile, duration: f64) -> ShapedSource {
    ShapedSource::new(profile.clone(), shape(duration), SEED).for_fleet(FLEET)
}

fn run_fleet(
    profile: &AppProfile,
    duration: f64,
    bound: f64,
    budget: f64,
) -> (ClusterOutcome, Vec<RunResult>) {
    let power = CorePowerModel::haswell_like();
    let config = SimConfig::paper_simulated();
    // Seed each controller's latency tables from a short prefix of a twin
    // source — the only part of the stream that is ever materialized.
    let prefix = drain_to_trace(source(profile, duration), Some(256));
    let mut cluster = Cluster::new(config.clone(), FLEET, Box::new(RoundRobin::new()), |_| {
        RubikController::seeded_for_trace(
            RubikConfig::new(bound).with_profiling_window(1024),
            config.dvfs.clone(),
            &prefix,
            256,
        )
    })
    .with_power(power);
    if budget.is_finite() {
        cluster = cluster
            .with_fleet_controller(Box::new(PegasusFleet::new(budget, power).with_epoch(EPOCH)));
    }
    cluster
        .run_streamed_with_results(source(profile, duration))
        .expect("generated sources are time-ordered")
}

fn bench_fleet_stream(c: &mut Criterion) {
    let profile = AppProfile::masstree();
    let bound = 3.0 * profile.mean_service_time();
    let per_server = requests_per_server();
    let budget = BUDGET_PER_SERVER * FLEET as f64;
    // Size the window so the shaped stream draws roughly the request budget.
    let capacity = WorkloadGenerator::new(profile.clone(), SEED).steady_rate(1.0);
    let average_load = shape(1.0).average_load();
    let duration = (per_server * FLEET) as f64 / (average_load * capacity * FLEET as f64);
    let expected = source(&profile, duration).expected_requests();

    let mut group = c.benchmark_group("fleet_stream");
    group.bench_with_input(BenchmarkId::new("mode", "capped"), &budget, |b, &budget| {
        b.iter(|| {
            let (outcome, _) = run_fleet(&profile, duration, bound, budget);
            assert!(outcome.requests > 0);
            outcome.fleet_energy // checksum against dead-code elimination
        })
    });
    group.finish();

    // One measured run per mode for the recorded experiment numbers.
    let (uncapped, uncapped_results) = run_fleet(&profile, duration, bound, f64::INFINITY);
    let (capped, capped_results) = run_fleet(&profile, duration, bound, budget);
    let power = CorePowerModel::haswell_like();
    let uncapped_max =
        rubik_bench::max_epoch_power(&uncapped_results, uncapped.duration, EPOCH, &power);
    let capped_max = rubik_bench::max_epoch_power(&capped_results, capped.duration, EPOCH, &power);

    let section = format!(
        "{{\n    \"servers\": {FLEET},\n    \"arrivals\": \"streamed (run_streamed, live NHPP source)\",\n    \
         \"shape\": \"diurnal {DIURNAL_MEAN}+/-{DIURNAL_AMPLITUDE} (2 periods), then step to {STEP_LOAD}\",\n    \
         \"expected_requests\": {expected:.0},\n    \"requests\": {},\n    \
         \"policy\": \"rubik-per-server (256-request prefix seed)\",\n    \
         \"budget_w\": {budget:.1},\n    \"epoch_s\": {EPOCH},\n    \
         \"uncapped\": {{\"p95_ms\": {:.4}, \"mean_power_w\": {:.2}, \
         \"max_epoch_power_w\": {uncapped_max:.2}}},\n    \
         \"capped\": {{\"p95_ms\": {:.4}, \"mean_power_w\": {:.2}, \
         \"max_epoch_power_w\": {capped_max:.2}}},\n    \
         \"cap_held\": {}\n  }}",
        capped.requests,
        uncapped.tail_latency * 1e3,
        uncapped.fleet_power,
        capped.tail_latency * 1e3,
        capped.fleet_power,
        capped_max <= budget,
    );
    match rubik_bench::merge_bench_section(CLUSTER_JSON, "fleet_stream", &section) {
        Ok(()) => println!("fleet_stream: merged into {CLUSTER_JSON}"),
        Err(e) => eprintln!("fleet_stream: could not write {CLUSTER_JSON}: {e}"),
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(5).output_json(BENCH_JSON);
    targets = bench_fleet_stream
}
criterion_main!(benches);
